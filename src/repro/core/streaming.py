"""Streaming per-flow QoE estimation engine (the deployable architecture).

The paper's deployment target is a passive monitor in the middle of the
network: packets of many concurrent VCA sessions arrive interleaved, one at a
time, and the operator wants per-second QoE estimates per session *as the
call is happening*.  :class:`StreamingQoEPipeline` is that engine:

* packets are consumed from any iterator (live capture, pcap reader,
  :class:`~repro.net.trace.PacketTrace`) in a **single pass**;
* traffic is demultiplexed by unidirectional 5-tuple via
  :class:`~repro.net.flows.FlowTable` (non-buffering mode), one independent
  estimation stream per flow;
* each flow stream runs the same operators as the batch pipeline -- media
  classification, online frame assembly (Algorithm 1), incremental IP/UDP
  feature accumulation -- and emits a
  :class:`~repro.core.pipeline.PipelineEstimate` the moment a window can no
  longer change;
* retained state is **O(window)** per flow: a reorder buffer bounded by the
  assembler lookback, the assembler's lookback state, and the accumulators /
  frame buckets of the currently-open windows.  Nothing scales with trace
  length.

:meth:`QoEPipeline.estimate <repro.core.pipeline.QoEPipeline.estimate>` is a
thin batch adapter over this engine, so the batch and streaming paths cannot
diverge.
"""

from __future__ import annotations

import heapq
import math
import warnings
from bisect import bisect_right
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from functools import partial
from time import perf_counter
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.features import IPUDPFeatureAccumulator
from repro.core.frame_assembly import AssembledFrame, FrameAssembler
from repro.core.heuristic import estimates_from_frames
from repro.core.media import MediaClassifier
from repro.net.block import PacketBlock, _BlockRow
from repro.net.flows import FlowKey, FlowTable
from repro.net.packet import RTP_FIXED_HEADER_LEN, Packet

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.core.pipeline import PipelineEstimate, QoEPipeline
    from repro.obs.registry import MetricsRegistry

__all__ = ["StreamEstimate", "StreamingQoEPipeline", "window_index", "window_indices"]

#: Sentinel distinguishing "not passed" from an explicit ``None`` override.
_UNSET = object()

_PIPELINE_ESTIMATE_CLS = None


def _pipeline_estimate_cls():
    """Late-bound :class:`~repro.core.pipeline.PipelineEstimate` (circular
    import at module load), cached so the per-window emit path doesn't pay
    the import-machinery lookup on every call."""
    global _PIPELINE_ESTIMATE_CLS
    if _PIPELINE_ESTIMATE_CLS is None:
        from repro.core.pipeline import PipelineEstimate

        _PIPELINE_ESTIMATE_CLS = PipelineEstimate
    return _PIPELINE_ESTIMATE_CLS


def window_index(timestamp: float, start: float, window_s: float) -> int:
    """The window ``k`` with ``start + k*window_s <= timestamp < start + (k+1)*window_s``.

    Uses the same boundary arithmetic (index multiplication) as the batch
    windowing, with an explicit adjustment step so float round-off in the
    division can never place a timestamp on the wrong side of a boundary.
    """
    k = int(math.floor((timestamp - start) / window_s))
    while timestamp >= start + (k + 1) * window_s:
        k += 1
    while k > 0 and timestamp < start + k * window_s:
        k -= 1
    return k


def window_indices(timestamps: np.ndarray, start: float, window_s: float) -> np.ndarray:
    """Vectorized :func:`window_index` over a float64 timestamp array.

    Identical arithmetic (float64 division, floor, and the two boundary
    adjustment sweeps), so every element agrees with the scalar function to
    the last ulp -- the block path's windows land exactly where the
    per-packet path's do.
    """
    k = np.floor((timestamps - start) / window_s).astype(np.int64)
    while True:
        overshoot = timestamps >= start + (k + 1) * window_s
        if not overshoot.any():
            break
        k[overshoot] += 1
    while True:
        undershoot = (k > 0) & (timestamps < start + k * window_s)
        if not undershoot.any():
            break
        k[undershoot] -= 1
    return k


@dataclass(frozen=True)
class StreamEstimate:
    """A per-window estimate emitted by the streaming engine for one flow.

    ``flow`` is the unidirectional 5-tuple the estimate belongs to, or
    ``None`` when the engine runs in single-flow mode (``demux_flows=False``).

    The sharded monitor's return path ships these in columnar batches (see
    :class:`~repro.net.estwire.EstimateBatch`): a worker's tick emissions are
    flat-encoded into a shared-memory ring slot and rebuilt on the parent
    side bit-identically, so the estimates a sink observes never depend on
    the transport.
    """

    flow: FlowKey | None
    estimate: "PipelineEstimate"

    @classmethod
    def _from_wire(cls, flow: FlowKey | None, estimate: "PipelineEstimate") -> "StreamEstimate":
        """Trusted fast constructor for decoded wire rows (see
        :meth:`PipelineEstimate._from_wire
        <repro.core.pipeline.PipelineEstimate._from_wire>`)."""
        item = object.__new__(cls)
        item.__dict__.update(flow=flow, estimate=estimate)
        return item


class _FlowStream:
    """Per-flow streaming state: reorder buffer, online operators, open windows.

    All retained state is bounded: the reorder buffer holds at most
    ``reorder_depth`` packets, the assembler keeps ``lookback`` assignments,
    and only windows that are still open hold accumulators / frame buckets
    (dropped the moment the window closes).
    """

    def __init__(
        self,
        config: PipelineConfig,
        classifier: MediaClassifier,
        assembler: FrameAssembler | None,
        predict: Callable[[np.ndarray, float], "PipelineEstimate | None"] | None,
        obs: "MetricsRegistry | None" = None,
    ) -> None:
        assert config.reorder_depth is not None, "engine must resolve reorder_depth"
        #: Optional metrics registry (engine-owned); records the
        #: ``frame_assembly`` stage span on the heuristic block path.
        self.obs = obs
        self.window_s = config.window_s
        self.start = config.start
        self.reorder_depth = config.reorder_depth
        self.max_frame_age_s = config.max_frame_age_s
        self.backfill_limit = config.backfill_limit
        self.classifier = classifier
        #: Online frame assembler (heuristic mode) -- one per flow.
        self.assembler = assembler
        #: ML predictor callback (trained mode); ``None`` -> heuristic mode.
        self.predict = predict
        self._pending: list[tuple[float, int, Packet]] = []
        self._seq = 0
        self._watermark: float | None = None
        #: Block-path bookkeeping: the in-block row index of the packet whose
        #: push is currently triggering emissions (``None`` outside a block).
        #: The engine reads it to restore per-packet emission order.
        self.trigger_pos: int | None = None
        #: Arrival time of the newest packet ever pushed (unlike the
        #: watermark, set even while everything still sits in the reorder
        #: buffer) -- the idle-eviction signal.
        self.last_seen: float | None = None
        self._next_window = 0
        # Heuristic mode: finalized frames keyed by the window their end time
        # falls in; dropped when the window is emitted.
        self._frame_buckets: dict[int, list[AssembledFrame]] = {}
        # Trained mode: the accumulator of the (single) window currently being
        # filled -- released packets arrive in timestamp order, so at most one
        # feature window is ever open.
        self._acc: IPUDPFeatureAccumulator | None = None
        self._acc_index = -1

    # -- introspection (used by the memory-bound tests) ------------------------

    @property
    def buffered_packets(self) -> int:
        return len(self._pending)

    @property
    def open_windows(self) -> int:
        return len(self._frame_buckets) + (1 if self._acc is not None else 0)

    @property
    def next_window_start(self) -> float:
        """Start of the earliest window this flow could still emit."""
        return self.start + self._next_window * self.window_s

    # -- streaming -------------------------------------------------------------

    def push(self, packet: Packet) -> list["PipelineEstimate"]:
        """Feed one packet; returns estimates for any windows that closed."""
        if self.last_seen is None or packet.timestamp > self.last_seen:
            self.last_seen = packet.timestamp
        heapq.heappush(self._pending, (packet.timestamp, self._seq, packet))
        self._seq += 1
        if len(self._pending) <= self.reorder_depth:
            return []
        _, _, released = heapq.heappop(self._pending)
        return self._release(released)

    def push_rows(
        self,
        timestamps: np.ndarray,
        sizes: np.ndarray,
        positions: np.ndarray,
        rows: list | None = None,
    ) -> list[tuple[int, "PipelineEstimate"]]:
        """Feed a run of block rows: the columnar hot path.

        ``timestamps`` / ``sizes`` are one flow's columns in arrival order;
        ``positions`` carries each row's index in the enclosing block, and
        every returned estimate is tagged with the position of the row whose
        (virtual) push triggered it, so the engine can interleave flows back
        into exact per-packet emission order.  ``rows`` is an optional list
        of packet-like objects for the same rows (kept for callers that
        still have them); neither mode needs it -- absent rows degrade to
        ``_BlockRow`` views on the columns.

        When the run is timestamp-sorted and nothing in it backdates the
        reorder buffer -- the overwhelmingly common case -- the reorder
        buffer reduces to a sliding delay line: the released rows are the
        sorted buffer followed by the run's prefix.  Trained mode then
        processes the releases with one vectorized window assignment and one
        array accumulator update per window; heuristic mode runs the
        vectorized frame assembler (:meth:`FrameAssembler.push_rows`) over
        the released video rows and replays the window-close schedule from
        the resulting frame spans, constructing zero packet objects.  Both
        replay exactly what per-packet :meth:`push` does (same releases,
        same order, same float arithmetic); disordered runs -- and runs
        where the liveness bound (``max_frame_age_s``) could evict a frame
        mid-run -- fall back to the per-row path, which *is* :meth:`push`.
        """
        m = len(timestamps)
        if m == 0:
            return []
        trained = self.predict is not None
        pending = self._pending
        ordered = m == 1 or bool(np.all(timestamps[1:] >= timestamps[:-1]))
        newest = float(timestamps[-1]) if ordered else float(timestamps.max())
        if self.last_seen is None or newest > self.last_seen:
            self.last_seen = newest
        if ordered and pending:
            ordered = float(timestamps[0]) >= max(entry[0] for entry in pending)
        if ordered and self._watermark is not None:
            # A run that backdates the stream (possible whenever the buffer
            # is shallower than the disorder, e.g. reorder_depth=0) must go
            # through _release's stale-packet drop, not the delay line.
            ordered = float(timestamps[0]) >= self._watermark
        if not ordered:
            out: list[tuple[int, PipelineEstimate]] = []
            for i in range(m):
                pos = int(positions[i])
                self.trigger_pos = pos
                row = rows[i] if rows is not None else _BlockRow(float(timestamps[i]), int(sizes[i]))
                for estimate in self.push(row):
                    out.append((pos, estimate))
            self.trigger_pos = None
            return out

        depth = self.reorder_depth
        p0 = len(pending)
        pending_sorted = sorted(pending)
        seq0 = self._seq
        self._seq += m
        n_release = p0 + m - depth if p0 + m > depth else 0
        out = []
        if n_release:
            trig_start = depth - p0
            if not trained:
                vectorized = self._push_rows_heuristic(
                    timestamps, sizes, positions, pending_sorted, p0, n_release, trig_start
                )
                if vectorized is None:
                    # Liveness bailout: a stale sweep could evict a frame
                    # mid-run, so replay per row -- _release interleaves
                    # finalize_stale exactly.
                    released = [entry[2] for entry in pending_sorted[:n_release]]
                    if rows is not None:
                        released.extend(rows[: n_release - len(released)])
                    else:
                        for i in range(n_release - len(released)):
                            released.append(_BlockRow(float(timestamps[i]), int(sizes[i])))
                    for r, row in enumerate(released):
                        trig = int(positions[trig_start + r])
                        self.trigger_pos = trig
                        for estimate in self._release(row):
                            out.append((trig, estimate))
                    self.trigger_pos = None
                else:
                    out = vectorized
            else:
                if p0:
                    pend_ts = np.fromiter(
                        (entry[0] for entry in pending_sorted), dtype=np.float64, count=p0
                    )
                    pend_sz = np.fromiter(
                        (entry[2].payload_size for entry in pending_sorted), dtype=np.int64, count=p0
                    )
                    rel_ts = np.concatenate((pend_ts, timestamps))[:n_release]
                    rel_sz = np.concatenate((pend_sz, sizes))[:n_release]
                else:
                    rel_ts = timestamps[:n_release]
                    rel_sz = sizes[:n_release]
                rel_trig = positions[trig_start : trig_start + n_release]
                if self._watermark is None and self.backfill_limit is not None:
                    first_window = window_index(float(rel_ts[0]), self.start, self.window_s)
                    self._next_window = max(self._next_window, first_window - self.backfill_limit)
                self._watermark = float(rel_ts[-1])
                ks = window_indices(rel_ts, self.start, self.window_s)
                bounds = np.flatnonzero(np.diff(ks)) + 1
                starts = np.concatenate(([0], bounds))
                ends = np.concatenate((bounds, [n_release]))
                for a, b in zip(starts.tolist(), ends.tolist()):
                    k = int(ks[a])
                    trig = int(rel_trig[a])
                    self.trigger_pos = trig
                    for estimate in self._close_through(k - 1):
                        out.append((trig, estimate))
                    if self._acc is None or k != self._acc_index:
                        self._acc = IPUDPFeatureAccumulator(
                            self.window_s, classifier=self.classifier
                        )
                        self._acc_index = k
                    self._acc.extend(rel_ts[a:b], rel_sz[a:b])
                self.trigger_pos = None
        # Rebuild the reorder buffer: the unreleased tail of (sorted pending
        # ++ incoming) is sorted, hence a valid heap as-is.
        tail = list(pending_sorted[n_release:]) if n_release < p0 else []
        inc_start = max(0, n_release - p0)
        if rows is not None:
            for i in range(inc_start, m):
                tail.append((float(timestamps[i]), seq0 + i, rows[i]))
        else:
            for i in range(inc_start, m):
                timestamp = float(timestamps[i])
                tail.append((timestamp, seq0 + i, _BlockRow(timestamp, int(sizes[i]))))
        self._pending = tail
        return out

    def _push_rows_heuristic(
        self,
        timestamps: np.ndarray,
        sizes: np.ndarray,
        positions: np.ndarray,
        pending_sorted: list,
        p0: int,
        n_release: int,
        trig_start: int,
    ) -> "list[tuple[int, PipelineEstimate]] | None":
        """Vectorized heuristic release path over one sorted run.

        The released rows (sorted reorder buffer ++ run prefix) are
        classified with one ``video_mask`` call, assembled with one
        :meth:`FrameAssembler.push_rows` call, and the window-close loop of
        :meth:`_close_ready` is replayed from the run's frame spans: window
        ``k`` closes at the first released row ``r`` past its end where no
        open frame could still finalize into it, and the emission is tagged
        with ``positions[trig_start + r]`` -- the same trigger the
        per-packet path would have used.  Finalized frames bucket in
        finalization order, interleaved with emissions exactly as scalar
        pushes interleave them, so estimates and their order are
        bit-identical.

        Returns ``None`` -- committing nothing -- when the assembler's
        liveness precheck says a ``finalize_stale`` sweep could fire inside
        this run (the caller then releases per row).
        """
        assembler = self.assembler
        assert assembler is not None
        if p0:
            pend_ts = np.fromiter(
                (entry[0] for entry in pending_sorted), dtype=np.float64, count=p0
            )
            pend_sz = np.fromiter(
                (entry[2].payload_size for entry in pending_sorted), dtype=np.int64, count=p0
            )
            rel_ts = np.concatenate((pend_ts, timestamps))[:n_release]
            rel_sz = np.concatenate((pend_sz, sizes))[:n_release]
        else:
            rel_ts = timestamps[:n_release]
            rel_sz = sizes[:n_release]
        horizon = float(rel_ts[-1])
        mask = self.classifier.video_mask(rel_sz)
        n_video = int(np.count_nonzero(mask))
        run = None
        vrows: np.ndarray | None = None
        vts: np.ndarray | None = None
        if n_video:
            if n_video == n_release:
                # Every released row is video (the common case on a video
                # flow): the video -> released row mapping is the identity,
                # so skip the flatnonzero/fancy-index indirection.
                vts = rel_ts
                vsz = rel_sz
            else:
                vrows = np.flatnonzero(mask)
                vts = rel_ts[vrows]
                vsz = rel_sz[vrows]
            media = np.maximum(vsz - RTP_FIXED_HEADER_LEN, 0)
            obs = self.obs
            started = perf_counter() if obs is not None else 0.0
            run = assembler.push_rows(
                vsz, media, vts, max_gap_s=self.max_frame_age_s, horizon=horizon
            )
            if obs is not None:
                obs.time_stage("frame_assembly", started)
            if run is None:
                return None
        elif self.max_frame_age_s is not None:
            stale_bound = horizon - self.max_frame_age_s
            if any(f.end_time < stale_bound for f in assembler._open.values()):
                return None

        if self._watermark is None and self.backfill_limit is not None:
            first_window = window_index(float(rel_ts[0]), self.start, self.window_s)
            self._next_window = max(self._next_window, first_window - self.backfill_limit)
        self._watermark = horizon

        if horizon < self.start + (self._next_window + 1) * self.window_s:
            # No window can close inside this run: skip the replay machinery
            # and just bucket the finalized frames in order.
            if run is not None:
                for _, frame in run.finalized:
                    self._bucket_frame(frame)
            return []

        # Per-frame placement in released-row coordinates.  Two fancy-indexes
        # over the shared occurrence array plus ``tolist`` convert everything
        # the replay loop touches into plain Python scalars up front; each
        # span is just ``(lo, hi)`` bounds into those shared lists (the loop
        # bisects within the bounds, no per-span copies).  Frames that
        # finalize before the first unclosed window's boundary row can never
        # block a close (``cross`` only grows), so they are dropped here.
        occ_rel_all: list[int] = []
        occ_ts_all: list[float] = []
        span_data: list[tuple[int, int, int | None, float | None, int]] = []
        fins: list[AssembledFrame] = []
        fin_rows: list[int] = []
        if run is not None:
            assert vts is not None
            occ_idx = np.maximum(run.occ_all, 0)  # carried prefix slots (< 0) are never read
            if vrows is None:
                occ_rel_all = occ_idx.tolist()
                occ_ts_all = rel_ts[occ_idx].tolist()
                vrows_list: "range | list[int]" = range(n_release)
            else:
                occ_rel_all = vrows[occ_idx].tolist()
                occ_ts_all = vts[occ_idx].tolist()
                vrows_list = vrows.tolist()
            lo_list = run.lo.tolist()
            hi_list = run.hi.tolist()
            fin_rows_run = run.fin_rows
            cross0 = int(
                np.searchsorted(
                    rel_ts, self.start + (self._next_window + 1) * self.window_s, side="left"
                )
            )
            for g, prior_end in enumerate(run.prior_ends):
                fin = fin_rows_run[g]
                if fin is not None:
                    fin_rel = vrows_list[fin]
                    if fin_rel <= cross0:
                        continue  # finalized before any closable boundary
                else:
                    fin_rel = None
                lo = lo_list[g]
                first_rel = -1 if prior_end is not None else occ_rel_all[lo]
                span_data.append((lo, hi_list[g], fin_rel, prior_end, first_rel))
            fin_ends: list[float] = []
            for row, frame in run.finalized:
                fins.append(frame)
                fin_rows.append(vrows_list[row])
                fin_ends.append(frame._end_time)
        elif assembler._open:
            # Pure non-video run: carried open frames still gate window
            # closes (they can neither finalize nor gain packets here).
            for frame in assembler._open.values():
                span_data.append((0, 0, None, frame.end_time, -1))

        out: list[tuple[int, PipelineEstimate]] = []
        ev = 0
        n_fins = len(fins)
        # One vectorized window_index over every finalized frame (identical
        # arithmetic), then inline bucketing -- _bucket_frame per frame is
        # measurable at this call rate.
        fin_ks: list[int] = []
        if n_fins:
            fin_ks = window_indices(np.array(fin_ends), self.start, self.window_s).tolist()
        buckets = self._frame_buckets
        while True:
            window_end = self.start + (self._next_window + 1) * self.window_s
            if horizon < window_end:
                break
            cross = int(np.searchsorted(rel_ts, window_end, side="left"))
            r = cross
            blocked = False
            for lo, hi, fin_rel, prior_end, first_rel in span_data:
                if fin_rel is not None and fin_rel <= cross:
                    continue  # already finalized by the time the window ends
                if first_rel > cross:
                    continue  # opens past the boundary: its end is >= window_end
                i = bisect_right(occ_rel_all, cross, lo, hi) - 1
                end = occ_ts_all[i] if i >= lo else prior_end
                assert end is not None
                if end >= window_end:
                    continue
                # The frame blocks window k until it finalizes or gains a
                # packet at/after the boundary row (whose timestamp is then
                # necessarily >= window_end).
                unblock = fin_rel
                if i + 1 < hi:
                    gain = occ_rel_all[i + 1]
                    unblock = gain if unblock is None else min(unblock, gain)
                if unblock is None:
                    blocked = True  # stays open past the run: window can't close yet
                    break
                if unblock > r:
                    r = unblock
            if blocked:
                break
            while ev < n_fins and fin_rows[ev] <= r:
                k_fin = fin_ks[ev]
                if k_fin >= self._next_window:
                    bucket = buckets.get(k_fin)
                    if bucket is None:
                        buckets[k_fin] = [fins[ev]]
                    else:
                        bucket.append(fins[ev])
                ev += 1
            trig = int(positions[trig_start + r])
            estimate = self._emit(self._next_window)
            if estimate is not None:
                out.append((trig, estimate))
        while ev < n_fins:
            k_fin = fin_ks[ev]
            if k_fin >= self._next_window:
                bucket = buckets.get(k_fin)
                if bucket is None:
                    buckets[k_fin] = [fins[ev]]
                else:
                    bucket.append(fins[ev])
            ev += 1
        return out

    def flush(self) -> list["PipelineEstimate"]:
        """Drain the reorder buffer, finalize open frames, close all windows."""
        estimates: list[PipelineEstimate] = []
        while self._pending:
            _, _, released = heapq.heappop(self._pending)
            estimates.extend(self._release(released))
        if self._watermark is None:
            return estimates
        if self.predict is None:
            assert self.assembler is not None
            for frame in self.assembler.flush():
                self._bucket_frame(frame)
        estimates.extend(self._close_through(window_index(self._watermark, self.start, self.window_s)))
        return estimates

    # -- internals -------------------------------------------------------------

    def _release(self, packet: Packet) -> list["PipelineEstimate"]:
        """Process one packet in (reorder-corrected) timestamp order."""
        if self._watermark is None:
            # First packet of the flow anchors the grid.  Without a back-fill
            # cap, a flow first seen late on the grid (mid-capture join, or
            # epoch-relative timestamps against start=0) would emit one empty
            # estimate per elapsed window -- billions for an epoch capture.
            if self.backfill_limit is not None:
                first_window = window_index(packet.timestamp, self.start, self.window_s)
                self._next_window = max(self._next_window, first_window - self.backfill_limit)
        elif packet.timestamp < self._watermark:
            # Reordered beyond the buffer's tolerance: the stream has already
            # advanced past this timestamp, so feeding it on would corrupt
            # the (order-sensitive) accumulator and assembler state -- and
            # its window may even have been emitted.  Drop it instead; the
            # batch path never hits this because traces arrive sorted.
            return []
        self._watermark = packet.timestamp
        if self.predict is not None:
            return self._release_trained(packet)
        return self._release_heuristic(packet)

    def _release_trained(self, packet: Packet) -> list["PipelineEstimate"]:
        k = window_index(packet.timestamp, self.start, self.window_s)
        # Every window before the packet's own is now immutable (released
        # packets are in timestamp order), so close them immediately.
        estimates = self._close_through(k - 1)
        if self._acc is None or k != self._acc_index:
            self._acc = IPUDPFeatureAccumulator(self.window_s, classifier=self.classifier)
            self._acc_index = k
        self._acc.push(packet)
        return estimates

    def _release_heuristic(self, packet: Packet) -> list["PipelineEstimate"]:
        assert self.assembler is not None
        if self.classifier.push(packet):
            for frame in self.assembler.push(packet):
                self._bucket_frame(frame)
        return self._close_ready()

    def _bucket_frame(self, frame: AssembledFrame) -> None:
        k = window_index(frame.end_time, self.start, self.window_s)
        if k >= self._next_window:  # frames for already-emitted windows cannot occur
            self._frame_buckets.setdefault(k, []).append(frame)

    def _close_ready(self) -> list["PipelineEstimate"]:
        """Emit every heuristic window that can no longer gain frames.

        Window *k* closes once the stream has advanced past its end *and* no
        still-open frame could finalize with an end time inside it.
        """
        assert self.assembler is not None and self._watermark is not None
        estimates: list[PipelineEstimate] = []
        while True:
            window_end = self.start + (self._next_window + 1) * self.window_s
            if self._watermark < window_end:
                break
            if self.max_frame_age_s is not None:
                # Liveness bound: frames whose video stalled long ago will
                # never finalize on their own while only audio keeps flowing.
                for frame in self.assembler.finalize_stale(self._watermark - self.max_frame_age_s):
                    self._bucket_frame(frame)
            if any(f.end_time < window_end for f in self.assembler.open_frames):
                break  # an open frame might still finalize into this window
            estimate = self._emit(self._next_window)
            if estimate is not None:
                estimates.append(estimate)
        return estimates

    def _close_through(self, last_index: int) -> list["PipelineEstimate"]:
        estimates: list[PipelineEstimate] = []
        while self._next_window <= last_index:
            estimate = self._emit(self._next_window)
            if estimate is not None:
                estimates.append(estimate)
        return estimates

    def _emit(self, k: int) -> "PipelineEstimate | None":
        PipelineEstimate = _pipeline_estimate_cls()

        window_start = self.start + k * self.window_s
        self._next_window = k + 1
        if self.predict is not None:
            if self._acc is not None and self._acc_index == k:
                acc = self._acc
            else:
                acc = IPUDPFeatureAccumulator(self.window_s, classifier=self.classifier)
            if self._acc is not None and self._acc_index <= k:
                self._acc = None  # consumed, or stale from excessive reordering
            return self.predict(acc.features(), window_start)
        frames = self._frame_buckets.pop(k, [])
        # The upper bound is the next window's start so the membership filter
        # agrees exactly with the window_index bucketing on fractional grids.
        heuristic = estimates_from_frames(
            frames, window_start, self.window_s,
            window_end=self.start + (k + 1) * self.window_s,
        )
        return PipelineEstimate(
            window_start=heuristic.window_start,
            frame_rate=heuristic.frame_rate,
            bitrate_kbps=heuristic.bitrate_kbps,
            frame_jitter_ms=heuristic.frame_jitter_ms,
            resolution=None,
            source="heuristic",
        )


class StreamingQoEPipeline:
    """Single-pass, per-flow, bounded-memory QoE estimation.

    Wraps a (trained or untrained) :class:`~repro.core.pipeline.QoEPipeline`
    and applies its estimators incrementally::

        pipeline = QoEPipeline.for_vca("teams").train(lab_calls)
        stream = StreamingQoEPipeline(pipeline)
        for packet in live_capture:
            for emitted in stream.push(packet):
                handle(emitted.flow, emitted.estimate)
        for emitted in stream.flush():
            handle(emitted.flow, emitted.estimate)

    Parameters
    ----------
    pipeline:
        The configured estimator stack.  Whether the ML models or the IP/UDP
        heuristic are used is decided by ``pipeline.is_trained`` at
        construction time, exactly as in the batch path.
    config:
        A :class:`~repro.core.config.PipelineConfig` describing the engine's
        behaviour.  Defaults to ``pipeline.config``.  The keyword arguments
        below are per-field overrides kept for convenience (and backward
        compatibility); when passed they take precedence over ``config``.
    demux_flows:
        When true (default), packets are demultiplexed by unidirectional
        5-tuple and each flow gets an independent estimation stream.  When
        false, all packets are treated as one pre-isolated session (the
        batch-adapter mode).
    start:
        Time origin of the windowing grid (default 0.0, i.e. call time zero).
    reorder_depth:
        Size of the per-flow reorder buffer.  Defaults to the assembler
        lookback: packets displaced by at most this many positions are
        re-sorted transparently, mirroring the reordering tolerance of
        Algorithm 1.  Packets arriving later than that are dropped (their
        window may already be emitted) rather than corrupting open state.
    max_frame_age_s:
        Liveness bound for heuristic mode.  Algorithm 1's lookback counts
        packets, so a total video stall (camera off, outage) leaves the last
        frame open and would otherwise hold back every subsequent window
        while audio keeps flowing -- precisely the degraded seconds a live
        monitor exists to flag.  When set, open frames whose last packet
        lags the stream by more than this many seconds are force-finalized.
        ``None`` (default) preserves exact batch equivalence.
    backfill_limit:
        Maximum number of empty windows emitted before a flow's first packet
        (default 0: a flow's first window is the one its first packet falls
        in, on the shared grid).  This keeps a flow that joins mid-capture --
        or a capture with epoch-relative timestamps -- from back-filling one
        empty estimate per elapsed window since ``start``.  ``None`` means
        unlimited, the batch contract (windows from ``start``), which
        :meth:`collect` with ``batch=True`` selects automatically.
    """

    def __init__(
        self,
        pipeline: "QoEPipeline",
        config: PipelineConfig | None = None,
        demux_flows: bool | object = _UNSET,
        start: float | object = _UNSET,
        reorder_depth: int | None | object = _UNSET,
        max_frame_age_s: float | None | object = _UNSET,
        backfill_limit: int | None | object = _UNSET,
        obs: "MetricsRegistry | None" = None,
    ) -> None:
        self.pipeline = pipeline
        #: Optional :class:`~repro.obs.registry.MetricsRegistry`; ``None``
        #: keeps every tick at one falsy branch of overhead.
        self.obs = obs
        if config is None:
            config = pipeline.config
        overrides = {
            name: value
            for name, value in (
                ("demux_flows", demux_flows),
                ("start", start),
                ("reorder_depth", reorder_depth),
                ("max_frame_age_s", max_frame_age_s),
                ("backfill_limit", backfill_limit),
            )
            if value is not _UNSET
        }
        if overrides:
            config = config.replace(**overrides)
        # Resolve frame-assembly parameters from the *effective* config, not
        # the pipeline's pre-built heuristic: a per-engine config override of
        # delta_size/lookback must actually take effect.
        self._delta_size, self._lookback = config.resolve_assembly(pipeline.profile)
        if config.reorder_depth is None:
            config = config.replace(reorder_depth=self._lookback)
        self.config = config
        self.window_s = float(config.window_s)
        self.demux_flows = config.demux_flows
        self.start = config.start
        self.trained = pipeline.is_trained
        self.reorder_depth = config.reorder_depth
        self.max_frame_age_s = config.max_frame_age_s
        self.backfill_limit = config.backfill_limit
        self._closed = False
        #: Per-flow aggregate statistics only -- packets are never retained.
        self.flow_table = FlowTable(store_packets=False)
        self._streams: dict[FlowKey | None, _FlowStream] = {}
        self._flow_order: list[FlowKey | None] = []
        # Batch-adapter mode: when set, trained-mode windows append
        # ``(features, window_start)`` here instead of predicting per window,
        # so ``collect(batch=True)`` can run the forests once, vectorized.
        self._feature_rows: list[tuple[np.ndarray, float]] | None = None
        # Tick-batch mode: when set (inside push_chunk / push_block),
        # trained-mode windows append ``(flow, features, window_start,
        # trigger_pos)`` here and inference runs once per tick over all flows
        # whose windows closed in it.  ``trigger_pos`` is the triggering
        # packet's block row (``None`` on the per-packet chunk path); the
        # tick resolves in trigger order, i.e. per-packet emission order.
        self._tick_rows: list[tuple[FlowKey | None, np.ndarray, float, int | None]] | None = None
        # Estimates of a tick whose chunk iterator raised: the windows are
        # already closed, so they are delivered by the next chunk or flush.
        self._held_estimates: list[StreamEstimate] = []

    @classmethod
    def for_vca(cls, vca: str, window_s: int = 1, **kwargs) -> "StreamingQoEPipeline":
        """An untrained (heuristic-backed) streaming pipeline for ``vca``."""
        from repro.core.pipeline import QoEPipeline

        return cls(QoEPipeline.for_vca(vca, window_s=window_s), **kwargs)

    # -- introspection ---------------------------------------------------------

    @property
    def flows(self) -> list[FlowKey]:
        """The 5-tuples seen so far (demux mode), in first-seen order."""
        return [key for key in self._flow_order if key is not None]

    @property
    def buffered_packets(self) -> int:
        """Total packets currently held in reorder buffers (bounded)."""
        return sum(stream.buffered_packets for stream in self._streams.values())

    @property
    def open_windows(self) -> int:
        """Total windows currently open across all flows (bounded)."""
        return sum(stream.open_windows for stream in self._streams.values())

    # -- streaming -------------------------------------------------------------

    def push(self, packet: Packet) -> list[StreamEstimate]:
        """Feed one packet; returns estimates for any windows that closed.

        In single-flow mode the 5-tuple bookkeeping is skipped entirely (the
        session is pre-isolated by contract), keeping the batch adapter's
        per-packet cost to the estimation operators alone.
        """
        if self._closed:
            raise RuntimeError(
                "this engine was flushed (end of capture); construct a new "
                "StreamingQoEPipeline for the next capture"
            )
        if self.demux_flows:
            key: FlowKey | None = self.flow_table.add(packet)
        else:
            key = None
        stream = self._streams.get(key)
        if stream is None:
            stream = self._make_stream(key)
            self._streams[key] = stream
            self._flow_order.append(key)
        return [StreamEstimate(flow=key, estimate=e) for e in stream.push(packet)]

    def push_chunk(self, packets: Iterable[Packet]) -> list[StreamEstimate]:
        """Feed a chunk of packets as one inference *tick*.

        In trained mode, windows that close anywhere in the chunk -- across
        all flows -- defer their per-window inference; at the end of the
        chunk the deferred feature vectors are stacked and pushed through
        each per-metric forest in a single vectorized call
        (:meth:`~repro.core.estimators.BaseMLEstimator.predict_many`).  Tree
        traversal is row-independent, so the estimates are bit-identical to
        per-window :meth:`push` inference and are returned in the same
        emission order; only the inference overhead is amortized.  This is
        the hot loop of a sharded worker, where many concurrent flows close
        windows in the same tick.

        In heuristic (untrained) mode there is no inference to batch and the
        call is exactly ``push`` per packet.

        If the packet iterator raises mid-chunk, windows that had already
        closed are not lost: their (resolved) estimates are held and
        delivered at the front of the next ``push_chunk`` or ``flush`` call,
        matching ``push``'s property that a closed window's estimate always
        reaches the caller.
        """
        obs = self.obs
        if obs is None:
            return self._push_chunk(packets)
        started = perf_counter()
        # Only sized inputs are counted up front: materializing an arbitrary
        # iterator here would consume it before the error-path held-estimate
        # semantics get a chance to apply.
        n_packets = len(packets) if hasattr(packets, "__len__") else None
        emitted = self._push_chunk(packets)
        obs.time_stage("push_chunk", started)
        obs.inc("qoe_engine_ticks_total")
        if n_packets is not None:
            obs.inc("qoe_engine_packets_total", n_packets)
        if emitted:
            obs.inc("qoe_engine_estimates_total", len(emitted))
        return emitted

    def _push_chunk(self, packets: Iterable[Packet]) -> list[StreamEstimate]:
        emitted = self._held_estimates
        self._held_estimates = []
        if not self.trained or self._feature_rows is not None:
            try:
                for packet in packets:
                    emitted.extend(self.push(packet))
            except BaseException:
                self._held_estimates = emitted
                raise
            return emitted
        if self._tick_rows is not None:
            self._held_estimates = emitted
            raise RuntimeError("push_chunk is not reentrant")
        self._tick_rows = []
        try:
            for packet in packets:
                emitted.extend(self.push(packet))
            emitted.extend(self._flush_tick())
        except BaseException:
            emitted.extend(self._flush_tick())
            self._held_estimates = emitted
            raise
        finally:
            self._tick_rows = None
        return emitted

    def push_block(self, block: PacketBlock) -> list[StreamEstimate]:
        """Feed a columnar :class:`~repro.net.block.PacketBlock` as one tick.

        The struct-of-arrays hot path: the block is demultiplexed by its
        pre-computed flow codes (one stable argsort, no per-packet dict
        work), per-flow statistics update in bulk, and each flow's rows run
        through the stream's columnar path (:meth:`_FlowStream.push_rows`)
        -- vectorized window assignment and array accumulator updates in
        trained mode, vectorized frame assembly and window-close replay in
        heuristic mode.  No packet objects are constructed for sorted
        in-flow runs in either mode.  Windows closing anywhere in the block
        share one vectorized inference call, exactly like
        :meth:`push_chunk`.

        **Equivalence contract (pinned by tests):** feeding a capture through
        ``push_block`` emits the same estimates as per-packet :meth:`push`,
        bit-identically and *in the same order* -- every emission is tagged
        with the block row that triggered it and the tick is emitted in
        trigger order, so callers cannot observe which path produced a
        stream.  Error handling matches ``push_chunk``: estimates of windows
        that closed before a failure are held for the next call.
        """
        if self._closed:
            raise RuntimeError(
                "this engine was flushed (end of capture); construct a new "
                "StreamingQoEPipeline for the next capture"
            )
        held = self._held_estimates
        self._held_estimates = []
        if len(block) == 0:
            return held
        obs = self.obs
        started = perf_counter() if obs is not None else 0.0
        tick = self.trained and self._feature_rows is None
        if tick:
            if self._tick_rows is not None:
                self._held_estimates = held
                raise RuntimeError("push_chunk/push_block are not reentrant")
            self._tick_rows = []
        tagged: list[tuple[int, int, StreamEstimate]] = []
        seq = 0
        try:
            if self.demux_flows:
                groups: list[tuple[int | None, np.ndarray]] = block.flow_groups()
            else:
                groups = [(None, np.arange(len(block)))]
            for code, idx in groups:
                if code is None:
                    key: FlowKey | None = None
                else:
                    key = block.flows[code]
                    self.flow_table.update_bulk(
                        key,
                        n=len(idx),
                        n_bytes=int(block.sizes[idx].sum()),
                        first_ts=float(block.timestamps[idx[0]]),
                        last_ts=float(block.timestamps[idx[-1]]),
                    )
                stream = self._streams.get(key)
                if stream is None:
                    stream = self._make_stream(key)
                    self._streams[key] = stream
                    self._flow_order.append(key)
                for pos, estimate in stream.push_rows(
                    block.timestamps[idx], block.sizes[idx], idx
                ):
                    tagged.append((pos, seq, StreamEstimate(flow=key, estimate=estimate)))
                    seq += 1
            tagged.sort(key=lambda item: (item[0], item[1]))
            emitted = held + [item[2] for item in tagged]
            if tick:
                emitted.extend(self._flush_tick())
        except BaseException:
            tagged.sort(key=lambda item: (item[0], item[1]))
            held.extend(item[2] for item in tagged)
            if tick and self._tick_rows:
                held.extend(self._flush_tick())
            self._held_estimates = held
            raise
        finally:
            if tick:
                self._tick_rows = None
        if obs is not None:
            obs.time_stage("push_block", started)
            obs.inc("qoe_engine_ticks_total")
            obs.inc("qoe_engine_packets_total", len(block))
            if emitted:
                obs.inc("qoe_engine_estimates_total", len(emitted))
        return emitted

    def process(self, packets: Iterable[Packet]) -> Iterator[StreamEstimate]:
        """Consume a packet iterator, yielding estimates as windows close."""
        for packet in packets:
            yield from self.push(packet)

    def flush(self) -> list[StreamEstimate]:
        """End of capture: close every remaining window of every flow.

        The engine is closed afterwards -- per-flow watermarks cannot be
        rewound, so pushing a new capture into a flushed engine would
        silently discard every packet as stale reordering.  Further
        :meth:`push` calls raise; flushing again is a no-op.
        """
        if self._closed:
            return []
        self._closed = True
        emitted: list[StreamEstimate] = self._held_estimates
        self._held_estimates = []
        for key in self._flow_order:
            for estimate in self._streams[key].flush():
                emitted.append(StreamEstimate(flow=key, estimate=estimate))
        if self.obs is not None and emitted:
            self.obs.inc("qoe_engine_estimates_total", len(emitted))
        return emitted

    def evict_idle(self, idle_s: float) -> list[StreamEstimate]:
        """Flush and drop flows with no packets in the last ``idle_s`` seconds.

        A monitor that runs forever sees an unbounded number of 5-tuples come
        and go; calling this periodically keeps total memory proportional to
        the number of *live* flows rather than flows ever seen.  Evicted
        flows' remaining windows are closed and returned; if such a flow
        later resumes, it simply re-enters as a fresh flow (``backfill_limit``
        bounds the gap windows).
        """
        newest = max(
            (s.last_seen for s in self._streams.values() if s.last_seen is not None),
            default=None,
        )
        if newest is None:
            return []
        emitted: list[StreamEstimate] = []
        n_evicted = 0
        try:
            for key in self._flow_order:
                stream = self._streams[key]
                # Keyed off last *arrival*, not the watermark: a tiny flow
                # whose only packets still sit in the reorder buffer must be
                # evictable too (its buffered packets are drained by the
                # flush).
                if stream.last_seen is not None and newest - stream.last_seen > idle_s:
                    for estimate in stream.flush():
                        emitted.append(StreamEstimate(flow=key, estimate=estimate))
                    del self._streams[key]
                    n_evicted += 1
                    if key is not None:
                        self.flow_table.remove(key)
        finally:
            # One O(flows) rebuild for the whole sweep: a per-eviction
            # ``list.remove`` would make a mass eviction O(evicted x flows),
            # a visible stall on monitors tracking tens of thousands of
            # flows.  Survivors keep their first-seen order.  Runs even if a
            # flush raised mid-sweep, so _flow_order and _streams can never
            # drift apart (a stale key would poison every later sweep).
            if n_evicted:
                self._flow_order = [key for key in self._flow_order if key in self._streams]
        if self.obs is not None:
            if n_evicted:
                self.obs.inc("qoe_engine_evicted_flows_total", n_evicted)
            if emitted:
                self.obs.inc("qoe_engine_estimates_total", len(emitted))
        return emitted

    def collect(self, packets: Iterable[Packet], batch: bool = False):
        """Process ``packets`` to exhaustion, flush, and return the estimates.

        This is *the* one-shot collection method (the composable alternative
        is a :class:`~repro.monitor.QoEMonitor` pushing into sinks):

        * ``batch=False`` (default): returns ``list[StreamEstimate]`` -- every
          window of every flow, tagged with its 5-tuple, in emission order.
        * ``batch=True``: single-session batch scoring (the
          ``QoEPipeline.estimate`` backend); returns bare
          ``list[PipelineEstimate]`` truncated to the batch window grid
          ``[0, end_time)`` -- the stream also closes the window *starting*
          exactly at the last timestamp, which the batch contract excludes.
          Requires ``demux_flows=False`` and a fresh engine.  In trained
          mode the per-window feature vectors are collected during the pass
          and the per-metric forests run once over all windows (vectorized),
          which is row-for-row identical to predicting at each window close
          but avoids per-window inference overhead.

        The deprecated ``estimates_for`` and ``batch_estimates`` methods are
        thin aliases of the two modes.
        """
        if not batch:
            emitted = list(self.process(packets))
            emitted.extend(self.flush())
            return emitted
        return self._collect_batch(packets)

    def estimates_for(self, packets: Iterable[Packet]) -> list[StreamEstimate]:
        """Deprecated alias of :meth:`collect`."""
        warnings.warn(
            "StreamingQoEPipeline.estimates_for is deprecated; use collect()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.collect(packets)

    def batch_estimates(self, packets: Iterable[Packet]) -> list["PipelineEstimate"]:
        """Deprecated alias of :meth:`collect` with ``batch=True``."""
        warnings.warn(
            "StreamingQoEPipeline.batch_estimates is deprecated; use collect(packets, batch=True)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.collect(packets, batch=True)

    def _collect_batch(self, packets: Iterable[Packet]) -> list["PipelineEstimate"]:
        if self.demux_flows:
            raise RuntimeError("collect(batch=True) requires demux_flows=False (one session)")
        if self._streams:
            raise RuntimeError("collect(batch=True) requires a fresh engine")
        # The batch contract covers [start, end_time) in full, including
        # leading empty windows.
        self.backfill_limit = None
        if self.trained:
            self._feature_rows = []
        try:
            estimates = [emitted.estimate for emitted in self.process(packets)]
            estimates.extend(emitted.estimate for emitted in self.flush())
            stream = self._streams.get(None)
            watermark = stream._watermark if stream is not None else None
            if watermark is None:
                return []
            # Number of windows k with start + k*window_s < watermark.
            k = window_index(watermark, self.start, self.window_s)
            n_windows = k if self.start + k * self.window_s >= watermark else k + 1
            if self.trained:
                assert self._feature_rows is not None
                return self._predict_batch(self._feature_rows[:n_windows])
            return estimates[:n_windows]
        finally:
            self._feature_rows = None

    def low_watermark(self, new_flow_slack_s: float | None = None) -> float | None:
        """A lower bound on the ``window_start`` of any future estimate.

        Per live flow the bound is exact: windows are emitted in index order,
        so nothing before ``start + _next_window * window_s`` can ever be
        emitted again.  A *new* flow, however, enters at its first packet's
        window minus up to ``backfill_limit`` empty windows, and that first
        packet can trail the most advanced flow by however disordered the
        source is across flows.  ``new_flow_slack_s`` caps that assumed
        cross-flow disorder (the intra-flow analogue is ``reorder_depth``):
        when given, the bound also covers a hypothetical flow whose first
        packet arrives ``new_flow_slack_s`` behind the newest packet seen --
        including its back-filled windows (with ``backfill_limit=None`` such
        a flow back-fills from the grid origin, so the bound is ``start``).
        Returns ``None`` before any packet has been pushed.  The sharded
        monitor's fan-in merge orders its output by releasing only estimates
        below every shard's watermark.
        """
        bounds: list[float] = []
        newest: float | None = None
        for stream in self._streams.values():
            bounds.append(stream.next_window_start)
            if stream.last_seen is not None and (newest is None or stream.last_seen > newest):
                newest = stream.last_seen
        if newest is None:
            return None
        if new_flow_slack_s is not None:
            if self.backfill_limit is None:
                bounds.append(self.start)
            else:
                horizon = newest - new_flow_slack_s
                first = window_index(horizon, self.start, self.window_s) - self.backfill_limit
                bounds.append(self.start + first * self.window_s)
        return min(bounds)

    # -- elastic sharding: per-flow snapshot / restore -------------------------

    def load_stats(self) -> dict:
        """One-pass mid-run load signal (telemetry / rebalancing input).

        ``live_flows`` / ``buffered_packets`` / ``open_windows`` in a single
        sweep over the streams, so per-tick telemetry costs one pass instead
        of the three the individual properties would take.
        """
        buffered = 0
        open_windows = 0
        for stream in self._streams.values():
            buffered += stream.buffered_packets
            open_windows += stream.open_windows
        return {
            "live_flows": len(self._streams),
            "buffered_packets": buffered,
            "open_windows": open_windows,
        }

    def dump_flow(self, key: FlowKey | None) -> tuple[bytes, float] | None:
        """Drain one live flow into a migration snapshot and forget it.

        Returns ``(payload, bound)`` where ``payload`` is the encoded
        :class:`~repro.net.flowwire.FlowSnapshot` and ``bound`` the flow's
        ``next_window_start`` (the earliest window it could still emit — the
        fan-in fence for the migration), or ``None`` when the flow is not
        live here.  After a dump the engine treats the flow as never seen:
        a later packet for the same 5-tuple would start a *fresh* flow, so
        the caller must stop routing the flow here first.
        """
        if self._closed:
            raise RuntimeError("cannot dump a flow from a flushed engine")
        stream = self._streams.get(key)
        if stream is None:
            return None
        from repro.net.flowwire import FlowSnapshot

        stats = None
        if key is not None:
            try:
                stats = self.flow_table.stats(key)
            except KeyError:
                stats = None
        snapshot = FlowSnapshot.from_stream(key, stream, stats)
        payload = snapshot.to_bytes()
        bound = stream.next_window_start
        del self._streams[key]
        self._flow_order.remove(key)
        if key is not None:
            self.flow_table.remove(key)
        return payload, bound

    def load_flow(self, key: FlowKey | None, payload: bytes) -> None:
        """Restore a migrated flow from :meth:`dump_flow`'s payload.

        The restored stream resumes push-identically: subsequent packets
        produce exactly the estimates the origin engine would have produced.
        Refuses if the flow is already live here (a migration protocol bug)
        or if the snapshot's mode / window grid does not match this engine.
        """
        if self._closed:
            raise RuntimeError("cannot load a flow into a flushed engine")
        if key in self._streams:
            raise RuntimeError(f"flow already live on this engine: {key}")
        from repro.net.flowwire import FlowSnapshot

        snapshot = FlowSnapshot.read_from(payload)
        stream = self._make_stream(key)
        snapshot.apply_to(stream)
        self._streams[key] = stream
        self._flow_order.append(key)
        if key is not None and snapshot.stats is not None:
            packets, n_bytes, first_seen, last_seen = snapshot.stats
            self.flow_table.update_bulk(
                key, n=packets, n_bytes=n_bytes, first_ts=first_seen, last_ts=last_seen
            )

    # -- internals -------------------------------------------------------------

    def _make_stream(self, key: FlowKey | None) -> _FlowStream:
        # Snapshot the engine's *current* knob values: collect(batch=True)
        # lifts backfill_limit after construction but before the first stream
        # exists, so per-stream configs must be derived lazily.
        stream_config = self.config.replace(
            backfill_limit=self.backfill_limit,
            max_frame_age_s=self.max_frame_age_s,
            reorder_depth=self.reorder_depth,
        )
        if self.trained:
            return _FlowStream(
                stream_config,
                classifier=self.pipeline.ml.media_classifier,
                assembler=None,
                predict=partial(self._window_closed, key),
            )
        return _FlowStream(
            stream_config,
            classifier=self.pipeline.heuristic.classifier,
            assembler=FrameAssembler(delta_size=self._delta_size, lookback=self._lookback),
            predict=None,
            obs=self.obs,
        )

    def _window_closed(self, key: FlowKey | None, features: np.ndarray, window_start: float):
        """Trained-mode predict dispatch for one closed window.

        Three behaviours behind one callback: defer to the batch adapter
        (``collect(batch=True)`` runs the forests once at the end), defer to
        the current tick (``push_chunk`` batches across flows), or predict
        immediately (plain ``push``).  Deferred windows return ``None`` so the
        owning stream emits nothing until the batch is resolved.
        """
        if self._feature_rows is not None:
            self._feature_rows.append((features, window_start))
            return None
        if self._tick_rows is not None:
            stream = self._streams.get(key)
            trigger_pos = stream.trigger_pos if stream is not None else None
            self._tick_rows.append((key, features, window_start, trigger_pos))
            return None
        return self._predict_rows([features], [window_start])[0]

    def _flush_tick(self) -> list[StreamEstimate]:
        """Resolve the current tick: one vectorized pass over all deferred windows."""
        rows = self._tick_rows
        if not rows:
            return []
        self._tick_rows = []
        if rows[0][3] is not None:
            # Block tick: flows were processed one after another, so restore
            # the per-packet trigger order (stable on ties) before emitting.
            rows.sort(key=lambda row: row[3])
        estimates = self._predict_rows(
            [features for _, features, _, _ in rows],
            [window_start for _, _, window_start, _ in rows],
        )
        return [
            StreamEstimate(flow=key, estimate=estimate)
            for (key, _, _, _), estimate in zip(rows, estimates)
        ]

    def _predict_batch(self, rows: list[tuple[np.ndarray, float]]) -> list["PipelineEstimate"]:
        """Vectorized per-metric inference over all collected windows."""
        if not rows:
            return []
        return self._predict_rows(
            [features for features, _ in rows],
            [window_start for _, window_start in rows],
        )

    def _predict_rows(self, feature_rows: list[np.ndarray], window_starts: list[float]) -> list["PipelineEstimate"]:
        """Run the trained per-metric forests once over ``feature_rows``."""
        from repro.core.pipeline import PipelineEstimate

        obs = self.obs
        if obs is None:
            rows = self.pipeline.ml.predict_many(feature_rows, window_starts)
        else:
            started = perf_counter()
            rows = list(self.pipeline.ml.predict_many(feature_rows, window_starts))
            obs.time_stage("predict", started)
            obs.inc("qoe_engine_predict_windows_total", len(feature_rows))
        return [
            PipelineEstimate(
                window_start=row.window_start,
                frame_rate=row.frame_rate,
                bitrate_kbps=row.bitrate_kbps,
                frame_jitter_ms=row.frame_jitter_ms,
                resolution=row.resolution,
                source="ml",
            )
            for row in rows
        ]
