"""Export-surface tests: Prometheus rendering/parsing and the periodic log sink.

Pins the PR 8 scrape contract: ``render_prometheus`` emits valid exposition
text (cumulative buckets, ``+Inf`` equal to the count, one ``# TYPE`` per
family) that ``parse_prometheus`` inverts exactly, and
:class:`~repro.obs.logsink.MetricsLogSink` appends one snapshot line per
interval of *stream* time plus a final line at close.
"""

from __future__ import annotations

import json

import pytest

from repro.core.pipeline import PipelineEstimate
from repro.core.streaming import StreamEstimate
from repro.obs.config import ObsConfig
from repro.obs.logsink import MetricsLogSink
from repro.obs.registry import MetricsRegistry
from repro.obs.render import parse_prometheus, render_prometheus


def make_item(window_start: float) -> StreamEstimate:
    return StreamEstimate(
        flow=None,
        estimate=PipelineEstimate(
            window_start=window_start,
            frame_rate=24.0,
            bitrate_kbps=500.0,
            frame_jitter_ms=1.0,
            resolution=None,
            source="heuristic",
        ),
    )


class TestRenderPrometheus:
    def _snapshot(self) -> dict:
        registry = MetricsRegistry(ObsConfig(enabled=True, buckets=(0.5, 1.0)))
        registry.inc("qoe_a_total", 3)
        registry.inc("qoe_a_total", 4, (("shard", "1"),))
        registry.set_gauge("qoe_g", 2.5)
        registry.observe("lat", 0.2)
        registry.observe("lat", 0.7)
        registry.observe("lat", 9.0)
        return registry.snapshot()

    def test_buckets_are_cumulative_and_inf_equals_count(self):
        text = render_prometheus(self._snapshot())
        series = parse_prometheus(text)
        assert series['lat_bucket{le="0.5"}'] == 1
        assert series['lat_bucket{le="1"}'] == 2  # cumulative, not per-bucket
        assert series['lat_bucket{le="+Inf"}'] == 3 == series["lat_count"]
        assert series["lat_sum"] == pytest.approx(9.9)

    def test_type_comment_once_per_family(self):
        text = render_prometheus(self._snapshot())
        type_lines = [line for line in text.splitlines() if line.startswith("# TYPE")]
        assert type_lines == [
            "# TYPE qoe_a_total counter",
            "# TYPE qoe_g gauge",
            "# TYPE lat histogram",
        ]

    def test_round_trip_values(self):
        series = parse_prometheus(render_prometheus(self._snapshot()))
        assert series["qoe_a_total"] == 3
        assert series['qoe_a_total{shard="1"}'] == 4
        assert series["qoe_g"] == 2.5

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""


class TestParsePrometheus:
    def test_skips_comments_and_blank_lines(self):
        text = "# HELP x something\n# TYPE x counter\n\nx 3\n"
        assert parse_prometheus(text) == {"x": 3.0}

    def test_rejects_garbage_lines(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus("not a metric line\n")

    def test_rejects_duplicate_series(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_prometheus("x 1\nx 2\n")


class TestMetricsLogSink:
    def test_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="interval_s"):
            MetricsLogSink(tmp_path / "m.jsonl", interval_s=0.0)

    def test_writes_one_line_per_interval_plus_final(self, tmp_path):
        path = tmp_path / "m.jsonl"
        registry = MetricsRegistry()
        sink = MetricsLogSink(path, interval_s=10.0, registry=registry)
        registry.inc("qoe_estimates_total")
        sink.emit(make_item(0.0))  # starts the clock, writes nothing
        sink.emit(make_item(5.0))
        assert sink.lines_written == 0
        registry.inc("qoe_estimates_total")
        sink.emit(make_item(10.0))  # one interval elapsed
        assert sink.lines_written == 1
        sink.emit(make_item(12.0))  # same interval: no extra line
        sink.close()
        first, final = [json.loads(line) for line in path.read_text().splitlines()]
        assert first["stream_time_s"] == 10.0
        assert first["metrics"]["counters"]["qoe_estimates_total"] == 2
        assert final["stream_time_s"] == 12.0  # last estimate seen, not last line

    def test_close_always_leaves_terminal_state_on_disk(self, tmp_path):
        path = tmp_path / "m.jsonl"
        registry = MetricsRegistry()
        sink = MetricsLogSink(path, interval_s=1000.0, registry=registry)
        registry.inc("qoe_estimates_total", 7)
        sink.emit(make_item(1.0))
        sink.close()
        sink.close()  # idempotent
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["metrics"]["counters"]["qoe_estimates_total"] == 7

    def test_emit_after_close_raises(self, tmp_path):
        sink = MetricsLogSink(tmp_path / "m.jsonl", registry=MetricsRegistry())
        sink.close()
        with pytest.raises(RuntimeError, match="closed"):
            sink.emit(make_item(0.0))

    def test_bind_registry_adopts_only_when_unset(self, tmp_path):
        explicit = MetricsRegistry()
        sink = MetricsLogSink(tmp_path / "m.jsonl", registry=explicit)
        sink.bind_registry(MetricsRegistry())
        assert sink.registry is explicit
        adopted = MetricsLogSink(tmp_path / "n.jsonl")
        monitor_registry = MetricsRegistry()
        adopted.bind_registry(monitor_registry)
        assert adopted.registry is monitor_registry
        sink.close()
        adopted.close()

    def test_unbound_sink_logs_nothing(self, tmp_path):
        path = tmp_path / "m.jsonl"
        sink = MetricsLogSink(path)
        sink.emit(make_item(0.0))
        sink.emit(make_item(100.0))
        sink.close()
        assert sink.lines_written == 0
        assert path.read_text() == ""
