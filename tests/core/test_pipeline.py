"""Unit tests for the end-to-end QoE pipeline (public API)."""

import numpy as np
import pytest

from repro.core.pipeline import QoEPipeline


class TestUntrainedPipeline:
    def test_falls_back_to_heuristic(self, teams_call):
        pipeline = QoEPipeline.for_vca("teams")
        assert not pipeline.is_trained
        estimates = pipeline.estimate(teams_call.trace)
        assert estimates
        assert all(e.source == "heuristic" for e in estimates)
        assert all(e.resolution is None for e in estimates)

    def test_estimates_cover_call_duration(self, teams_call):
        estimates = QoEPipeline.for_vca("teams").estimate(teams_call.trace)
        assert len(estimates) >= teams_call.duration_s - 1

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            QoEPipeline.for_vca("teams", window_s=0)


class TestTrainedPipeline:
    @pytest.fixture(scope="class")
    def trained(self, teams_calls_small):
        return QoEPipeline.for_vca("teams").train(teams_calls_small)

    def test_training_flags(self, trained):
        assert trained.is_trained

    def test_ml_estimates_are_reasonable(self, trained, teams_calls_small):
        call = teams_calls_small[0]
        estimates = trained.estimate_call(call)
        assert all(e.source == "ml" for e in estimates)
        # Compare the mid-call estimates against ground truth loosely (the
        # model saw this call during training, so it should be close).
        by_second = {int(e.window_start): e for e in estimates}
        errors = []
        for row in call.ground_truth.rows[3:-2]:
            estimate = by_second.get(row.second)
            assert estimate is not None
            errors.append(abs(estimate.frame_rate - row.frames_received))
        assert np.mean(errors) < 6.0

    def test_resolution_labels_predicted(self, trained, teams_calls_small):
        estimates = trained.estimate_call(teams_calls_small[1])
        labels = {e.resolution for e in estimates}
        assert labels <= {"low", "medium", "high"}

    def test_estimation_works_from_pcap_file(self, trained, teams_calls_small, tmp_path):
        path = tmp_path / "call.pcap"
        teams_calls_small[0].trace.to_pcap(path)
        estimates = trained.estimate(path)
        assert estimates
        assert all(np.isfinite(e.bitrate_kbps) for e in estimates)

    def test_wrong_vca_training_rejected(self, webex_call):
        with pytest.raises(ValueError):
            QoEPipeline.for_vca("teams").train([webex_call])

    def test_training_requires_calls(self):
        with pytest.raises(ValueError):
            QoEPipeline.for_vca("teams").train([])
