"""The invariant rules: one class per contract the repo already bled for.

Every rule names the PR whose contract it guards in its ``rationale``; the
README's "Static analysis" table is generated from these attributes (via
``--list-rules``), so the rule source is the single source of truth.

A note on philosophy: these rules are deliberately *conservative* -- when
the analysis cannot prove a call is safe (an obs receiver reached through a
helper, a ``Process`` target threaded through a parameter), it reports, and
the author either restructures to the provably-safe shape or suppresses
with a reason.  A project linter that stays silent on the hard cases
protects nothing; one that demands the simple shape keeps the simple shape
the norm.
"""

from __future__ import annotations

import ast

from repro.devtools.framework import LintContext, Rule, rule

__all__ = ["CODEC_MODULES"]

#: The wire-codec modules: the only places allowed to call
#: ``np.frombuffer`` (CODEC002) and required to spell every byte order
#: (CODEC001).
CODEC_MODULES = (
    "repro/net/block.py",
    "repro/net/estwire.py",
    "repro/net/flowwire.py",
)

#: Modules whose output must be a pure function of their input: estimator
#: math and wire codecs.  Wall-clock reads here (DET004) could only flow
#: into estimates or encoded bytes.  The engine/monitor/cluster layers are
#: excluded by scoping -- their ``perf_counter`` use is telemetry, and the
#: obs-off bit-identity pin (PR 8) covers that boundary at runtime.
PURE_MODULES = CODEC_MODULES + (
    "repro/core/estimators.py",
    "repro/core/evaluation.py",
    "repro/core/features.py",
    "repro/core/frame_assembly.py",
    "repro/core/heuristic.py",
    "repro/core/media.py",
    "repro/core/pipeline.py",
    "repro/core/resolution.py",
    "repro/core/rtp_heuristic.py",
    "repro/core/windows.py",
    "repro/ml/",
    "repro/net/flows.py",
    "repro/net/headers.py",
    "repro/net/packet.py",
    "repro/net/trace.py",
)


def _call_name(node: ast.Call, ctx: LintContext) -> str | None:
    return ctx.resolve(node.func)


# -- determinism ---------------------------------------------------------------


@rule
class NoBuiltinHash(Rule):
    id = "DET001"
    summary = "builtin hash() is banned in repro code"
    rationale = (
        "str/bytes hash() is salted per process (PYTHONHASHSEED); a routing or "
        "ordering decision made with it differs between replicas.  Flow routing "
        "uses CRC-32 over a stable byte encoding instead (PR 3 contract)."
    )
    scope = ("repro/",)
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: LintContext) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and "hash" not in ctx.module_names
        ):
            ctx.add(node, "builtin hash() is process-salted; use crc32 over a stable byte encoding")


@rule
class SequentialForestAggregation(Rule):
    id = "DET002"
    summary = "forest prediction aggregation must accumulate sequentially"
    rationale = (
        "np.mean's pairwise-summation blocking depends on batch shape, so a "
        "window predicted alone and inside a batch could differ in the last "
        "ulp, breaking the batched == per-window bit-identity pin (PR 3)."
    )
    scope = ("repro/ml/forest.py",)
    node_types = (ast.Call,)

    _MEAN_FNS = {"numpy.mean", "numpy.average", "numpy.nanmean"}
    _SUM_FNS = {"numpy.sum", "numpy.nansum", "numpy.add.reduce"}

    def visit(self, node: ast.Call, ctx: LintContext) -> None:
        resolved = _call_name(node, ctx)
        is_mean_attr = isinstance(node.func, ast.Attribute) and node.func.attr == "mean"
        if resolved in self._MEAN_FNS or is_mean_attr:
            ctx.add(node, "np.mean blocks pairwise; accumulate per tree sequentially")
            return
        func = ctx.enclosing_function(node)
        in_predict = isinstance(
            func, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and func.name.startswith("predict")
        is_sum_attr = isinstance(node.func, ast.Attribute) and node.func.attr == "sum"
        if in_predict and (resolved in self._SUM_FNS or is_sum_attr):
            ctx.add(
                node,
                "pairwise reduction in prediction aggregation; accumulate sequentially",
            )


@rule
class NoGlobalRandom(Rule):
    id = "DET003"
    summary = "no calls on the global random / np.random streams"
    rationale = (
        "The module-level RNGs are shared mutable state: any reordering of "
        "callers reshuffles every stream.  All randomness flows through "
        "explicitly constructed np.random.default_rng(seed) generators."
    )
    scope = ("repro/",)
    node_types = (ast.Call,)

    #: np.random names that construct an explicit generator (sanctioned)
    #: rather than touching the hidden global stream.
    _NP_CONSTRUCTORS = {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
    _STDLIB_GLOBAL_FNS = {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    }  # fmt: skip

    def visit(self, node: ast.Call, ctx: LintContext) -> None:
        resolved = _call_name(node, ctx)
        if resolved is None:
            return
        if resolved.startswith("numpy.random."):
            tail = resolved.removeprefix("numpy.random.")
            if "." not in tail and tail not in self._NP_CONSTRUCTORS:
                ctx.add(node, f"np.random.{tail} uses the global stream; pass a default_rng(seed)")
        elif resolved.startswith("random.") and resolved.removeprefix("random.") in self._STDLIB_GLOBAL_FNS:
            ctx.add(
                node,
                f"{resolved} uses the global stream; construct random.Random(seed) explicitly",
            )


@rule
class NoWallClockInPureModules(Rule):
    id = "DET004"
    summary = "no wall-clock reads in estimate/codec modules"
    rationale = (
        "Estimator math and wire codecs are pure functions of the capture; a "
        "wall-clock read there can only leak nondeterminism into estimates or "
        "encoded bytes.  Timing belongs to obs/, the monitors, and benchmarks."
    )
    scope = PURE_MODULES
    node_types = (ast.Call,)

    _CLOCKS = {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }

    def visit(self, node: ast.Call, ctx: LintContext) -> None:
        resolved = _call_name(node, ctx)
        if resolved in self._CLOCKS:
            ctx.add(node, f"wall-clock read ({resolved}) in a pure estimate/codec module")


# -- wire codecs ---------------------------------------------------------------


@rule
class ExplicitByteOrder(Rule):
    id = "CODEC001"
    summary = "codec struct formats and dtype literals must spell '<'"
    rationale = (
        "The flat-buffer codecs promise one byte order on the wire (PRs 4-7); "
        "a native-order format or dtype encodes differently on a big-endian "
        "peer and the decoder cannot tell.  '<' is part of the format."
    )
    scope = CODEC_MODULES
    node_types = (ast.Call,)

    _STRUCT_FNS = {
        "struct.Struct",
        "struct.pack",
        "struct.pack_into",
        "struct.unpack",
        "struct.unpack_from",
        "struct.iter_unpack",
        "struct.calcsize",
    }
    #: Native-order numpy scalar types; ``dtype=np.int64`` in a codec is the
    #: same implicit-order bug as ``dtype="i8"``.
    _NP_SCALARS = {
        "int8", "int16", "int32", "int64", "uint8", "uint16", "uint32",
        "uint64", "float16", "float32", "float64", "intp", "uintp",
    }  # fmt: skip

    def visit(self, node: ast.Call, ctx: LintContext) -> None:
        resolved = _call_name(node, ctx)
        if resolved in self._STRUCT_FNS and node.args:
            fmt = node.args[0]
            if isinstance(fmt, ast.Constant) and isinstance(fmt.value, str):
                if not fmt.value.startswith("<"):
                    ctx.add(fmt, f"struct format {fmt.value!r} has no explicit '<' byte order")
        if resolved == "numpy.dtype" and node.args:
            self._check_dtype_value(node.args[0], ctx)
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype" and node.args:
            self._check_dtype_value(node.args[0], ctx)
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                self._check_dtype_value(keyword.value, ctx)

    def _check_dtype_value(self, value: ast.AST, ctx: LintContext) -> None:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            if not value.value.startswith("<"):
                ctx.add(value, f"dtype literal {value.value!r} has no explicit '<' byte order")
            return
        resolved = ctx.resolve(value)
        if resolved is not None and resolved.startswith("numpy."):
            scalar = resolved.removeprefix("numpy.")
            if scalar in self._NP_SCALARS:
                ctx.add(value, f"np.{scalar} is native byte order; use np.dtype('<...')")


@rule
class FrombufferOnlyInCodecs(Rule):
    id = "CODEC002"
    summary = "np.frombuffer only inside the wire-codec modules"
    rationale = (
        "frombuffer reinterprets raw bytes with whatever dtype the caller "
        "guessed; outside the codecs' alignment helpers there is no layout "
        "contract to guess against.  Decode through the codec entry points "
        "(PacketBlock/EstimateBatch/FlowSnapshot.read_from) instead."
    )
    scope = ("repro/",)
    exclude = CODEC_MODULES
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: LintContext) -> None:
        if _call_name(node, ctx) == "numpy.frombuffer":
            ctx.add(node, "np.frombuffer outside the wire codecs; decode via the codec entry points")


# -- process model -------------------------------------------------------------


@rule
class SpawnSafeTargets(Rule):
    id = "SPAWN001"
    summary = "multiprocessing targets must be module-level callables"
    rationale = (
        "Workers start via spawn: the target is re-imported by qualified name "
        "in a fresh interpreter.  Lambdas and nested functions do not survive "
        "pickling, and 'fork would have worked' is not portable (PR 3)."
    )
    scope = ("repro/",)
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: LintContext) -> None:
        dotted = ctx.dotted(node.func)
        if dotted is None or not (dotted == "Process" or dotted.endswith(".Process")):
            return
        for keyword in node.keywords:
            if keyword.arg != "target":
                continue
            target = keyword.value
            if isinstance(target, ast.Lambda):
                ctx.add(target, "lambda as a Process target cannot cross a spawn boundary")
            elif isinstance(target, ast.Name) and target.id not in ctx.module_names:
                ctx.add(
                    target,
                    f"Process target {target.id!r} is not a module-level callable "
                    "(closures do not survive spawn pickling)",
                )


# -- observability -------------------------------------------------------------


@rule
class GuardedObsCalls(Rule):
    id = "OBS001"
    summary = "hot-path metrics calls must be guarded by an obs check"
    rationale = (
        "The PR 8 contract is obs-off == one falsy branch per call site: every "
        "record call in core/, cluster/ and net/ sits behind a truthiness / "
        "is-not-None check of its registry, so disabled telemetry costs "
        "nothing and a None registry can never be dereferenced."
    )
    scope = ("repro/core/", "repro/cluster/", "repro/net/")
    node_types = (ast.Call,)

    _RECORD_METHODS = {
        "inc",
        "set_gauge",
        "observe",
        "observe_stage",
        "time_stage",
        "timed_iter",
    }
    _OBS_NAMES = {"obs", "_obs", "registry", "_registry"}

    def visit(self, node: ast.Call, ctx: LintContext) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in self._RECORD_METHODS:
            return
        receiver = ctx.dotted(func.value)
        if receiver is None:
            ctx.add(node, f"metrics call .{func.attr}() on an unresolvable receiver; bind it to a name and guard it")
            return
        if receiver.rpartition(".")[2] not in self._OBS_NAMES:
            return
        if not self._guarded(node, receiver, ctx):
            ctx.add(
                node,
                f"{receiver}.{func.attr}() is not behind an obs-truthiness guard "
                "(obs-off must stay one falsy branch)",
            )

    # -- guard analysis --------------------------------------------------------

    def _guarded(self, node: ast.Call, receiver: str, ctx: LintContext) -> bool:
        for parent, child in ctx.ancestors(node):
            if isinstance(parent, ast.If):
                if child in parent.body and self._implies_truthy(parent.test, receiver, ctx):
                    return True
                if child in parent.orelse and self._implies_falsy(parent.test, receiver, ctx):
                    return True
            elif isinstance(parent, ast.IfExp):
                if child is parent.body and self._implies_truthy(parent.test, receiver, ctx):
                    return True
                if child is parent.orelse and self._implies_falsy(parent.test, receiver, ctx):
                    return True
            if any(
                child in suite and self._narrowed_before(suite, child, receiver, ctx)
                for suite in self._suites_of(parent)
            ):
                return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return False
        return False

    @staticmethod
    def _suites_of(node: ast.AST) -> list[list[ast.stmt]]:
        suites = []
        for name in ("body", "orelse", "finalbody"):
            suite = getattr(node, name, None)
            if isinstance(suite, list):
                suites.append(suite)
        return suites

    def _narrowed_before(
        self, suite: list[ast.stmt], child: ast.AST, receiver: str, ctx: LintContext
    ) -> bool:
        """True if an earlier statement in ``suite`` proves ``receiver`` truthy.

        Recognizes the early-exit shape (``if obs is None: return``) and the
        assert shape (``assert obs is not None``).
        """
        for stmt in suite:
            if stmt is child:
                return False
            if (
                isinstance(stmt, ast.If)
                and not stmt.orelse
                and self._implies_falsy(stmt.test, receiver, ctx)
                and isinstance(stmt.body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))
            ):
                return True
            if isinstance(stmt, ast.Assert) and self._implies_truthy(stmt.test, receiver, ctx):
                return True
        return False

    def _implies_truthy(self, test: ast.expr, receiver: str, ctx: LintContext) -> bool:
        """True if ``test`` being true proves ``receiver`` is non-None/truthy."""
        if ctx.dotted(test) == receiver:
            return True
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, right = test.left, test.comparators[0]
            if isinstance(test.ops[0], (ast.IsNot, ast.NotEq)):
                if ctx.dotted(left) == receiver and _is_none(right):
                    return True
                if ctx.dotted(right) == receiver and _is_none(left):
                    return True
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            return any(self._implies_truthy(value, receiver, ctx) for value in test.values)
        return False

    def _implies_falsy(self, test: ast.expr, receiver: str, ctx: LintContext) -> bool:
        """True if ``receiver`` being None forces ``test`` to be true."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return ctx.dotted(test.operand) == receiver
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, right = test.left, test.comparators[0]
            if isinstance(test.ops[0], (ast.Is, ast.Eq)):
                if ctx.dotted(left) == receiver and _is_none(right):
                    return True
                if ctx.dotted(right) == receiver and _is_none(left):
                    return True
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            return any(self._implies_falsy(value, receiver, ctx) for value in test.values)
        return False


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


# -- exception hygiene ---------------------------------------------------------


@rule
class ExceptionHygiene(Rule):
    id = "EXC001"
    summary = "no bare except; cluster handlers must propagate"
    rationale = (
        "A swallowed exception in a worker or pump loop turns a crash into a "
        "silent hang or silent data loss (the PR 3/5 error-propagation "
        "contract: worker death raises, it never wedges the parent).  Broad "
        "handlers must re-raise, or hand the error to the channel protocol."
    )
    scope = ("repro/",)
    node_types = (ast.ExceptHandler,)

    #: Method names that count as handing the failure to the protocol: the
    #: worker channel's error/progress surface, a queue, or a log/record.
    _PROPAGATE_ATTRS = {"error", "put", "put_nowait", "send", "progress", "record", "log", "inc"}
    #: Only these packages run worker/pump loops where a swallowed
    #: ``except Exception`` can wedge the fleet.
    _LOOP_PACKAGES = ("repro/cluster/",)

    def visit(self, node: ast.ExceptHandler, ctx: LintContext) -> None:
        if node.type is None:
            ctx.add(node, "bare except: catches SystemExit/KeyboardInterrupt; name the exception")
            return
        caught = ctx.dotted(node.type)
        if caught not in ("Exception", "BaseException"):
            return
        posix = "/" + ctx.path.replace("\\", "/").lstrip("/")
        if not any(f"/{pkg}" in posix for pkg in self._LOOP_PACKAGES):
            return
        if not self._propagates(node):
            ctx.add(
                node,
                f"except {caught} in a worker/pump module neither re-raises nor "
                "hands the error to the channel protocol",
            )

    def _propagates(self, handler: ast.ExceptHandler) -> bool:
        for stmt in ast.walk(handler):
            if isinstance(stmt, ast.Raise):
                return True
            if (
                isinstance(stmt, ast.Call)
                and isinstance(stmt.func, ast.Attribute)
                and stmt.func.attr in self._PROPAGATE_ATTRS
            ):
                return True
        return False


# -- API surface ---------------------------------------------------------------


@rule
class FrozenConfigs(Rule):
    id = "API001"
    summary = "public *Config dataclasses must be frozen=True"
    rationale = (
        "Configs cross process boundaries as their dict/JSON form and are "
        "shared between pipelines, workers and monitors; a mutable config "
        "mutated after one consumer read it is a determinism hole.  Frozen "
        "is the PR 2 contract for every config object."
    )
    scope = ("repro/",)
    node_types = (ast.ClassDef,)

    def visit(self, node: ast.ClassDef, ctx: LintContext) -> None:
        if not node.name.endswith("Config") or node.name.startswith("_"):
            return
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if ctx.resolve(target) not in ("dataclass", "dataclasses.dataclass"):
                continue
            frozen = isinstance(decorator, ast.Call) and any(
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in decorator.keywords
            )
            if not frozen:
                ctx.add(
                    node,
                    f"public config dataclass {node.name} is not frozen=True "
                    "(configs are shared and cross process boundaries)",
                )
            return
