"""Figures 5, 7, 9 (and A.4-A.9): top-5 feature importances per metric.

Paper shape: "# unique sizes" is a top feature for frame-rate estimation;
"# bytes" (and other volume features) dominate bitrate; packet-size statistics
dominate resolution.
"""

from benchmarks.conftest import N_ESTIMATORS, save_artifact
from repro.analysis.reporting import format_feature_importances
from repro.core.evaluation import feature_importance_report


def test_fig5_7_9_feature_importances(benchmark, lab_datasets):
    def run():
        reports = {}
        for vca, dataset in lab_datasets.items():
            for method in ("ipudp_ml", "rtp_ml"):
                for metric in ("frame_rate", "bitrate", "resolution"):
                    reports[(vca, method, metric)] = feature_importance_report(
                        dataset, method, metric, k=5, n_estimators=N_ESTIMATORS
                    )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    for (vca, method, metric), top in sorted(reports.items()):
        sections.append(
            format_feature_importances(
                top, title=f"Figures 5/7/9/A.4-A.9 - top-5 features ({method}, {metric}, {vca}, in-lab)"
            )
        )
    save_artifact("fig5_7_9_feature_importances", "\n\n".join(sections))

    # Bitrate importances are dominated by volume features for every VCA.
    volume_features = {"# bytes", "# packets", "Size [mean]", "Size [median]", "Size [max]", "Size [min]"}
    for vca in lab_datasets:
        top_names = [name for name, _ in reports[(vca, "ipudp_ml", "bitrate")][:3]]
        assert any(name in volume_features for name in top_names), vca

    # Frame-rate estimation leans on frame-structure signals: the paper
    # highlights "# unique sizes"; in the simulator the equivalent signal is
    # spread across "# unique sizes", "# packets" and the IAT statistics, so we
    # assert the weaker property that at least one of those frame-count-shaped
    # features appears in every VCA's top-5 (see EXPERIMENTS.md).
    frame_count_features = {"# unique sizes", "# packets", "# microbursts", "IAT [mean]", "IAT [median]", "IAT [max]", "IAT [stdev]", "IAT [min]"}
    for vca in lab_datasets:
        top_names = {name for name, _ in reports[(vca, "ipudp_ml", "frame_rate")]}
        assert top_names & frame_count_features, vca
