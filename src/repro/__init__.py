"""repro -- reproduction of "Estimating WebRTC Video QoE Metrics Without Using
Application Headers" (IMC 2023).

The package estimates per-second video QoE metrics (frame rate, bitrate,
frame jitter, resolution) of WebRTC video-conferencing sessions from passive
network measurements using **only IP/UDP headers**, and compares against
RTP-header baselines.  Because the original measurement environment (real VCA
clients, browser automation, household deployments) is not available offline,
the package also contains a full WebRTC traffic simulator, network emulator
and dataset builders that reproduce the relevant transport-level behaviour;
see DESIGN.md for the substitution rationale.

Quickstart (train once, deploy many)::

    from repro import (
        QoEPipeline, QoEMonitor, PcapSource, JSONLinesSink, SummarySink,
        build_lab_dataset, LabDatasetConfig,
    )

    lab = build_lab_dataset(LabDatasetConfig(calls_per_vca=4))
    pipeline = QoEPipeline.for_vca("teams").train(lab["teams"])
    pipeline.save("teams.model.json")

    monitor = QoEMonitor.from_model(
        "teams.model.json",
        source=PcapSource("capture.pcap"),
        sinks=[JSONLinesSink("estimates.jsonl"), SummarySink(degraded_fps_threshold=18)],
    )
    report = monitor.run()

The public API is composable Source -> Engine -> Sink: packet providers live
in :mod:`repro.sources`, estimate consumers in :mod:`repro.sinks`, behaviour
knobs in the frozen :class:`~repro.core.config.PipelineConfig`, and
:class:`~repro.monitor.QoEMonitor` wires one of each around the streaming
engine.
"""

from repro.core.config import PipelineConfig
from repro.core.pipeline import PipelineEstimate, QoEPipeline
from repro.core.streaming import StreamEstimate, StreamingQoEPipeline
from repro.core.estimators import IPUDPMLEstimator, RTPMLEstimator
from repro.monitor import MonitorReport, QoEMonitor
from repro.cluster import FanInSink, FlowShardRouter, ShardedQoEMonitor
from repro.obs import (
    MetricsLogSink,
    MetricsRegistry,
    ObsConfig,
    parse_prometheus,
    render_prometheus,
)
from repro.sources import (
    IteratorSource,
    MergedSource,
    PacketSource,
    PcapSource,
    TraceSource,
    as_source,
    iter_blocks,
)
from repro.sinks import (
    CollectorSink,
    CSVSink,
    EstimateSink,
    FlowSummary,
    JSONLinesSink,
    MetricsSnapshotSink,
    SummarySink,
)
from repro.core.heuristic import IPUDPHeuristic
from repro.core.rtp_heuristic import RTPHeuristic
from repro.core.media import MediaClassifier
from repro.core.evaluation import EvaluationDataset, compare_methods
from repro.datasets.lab import LabDatasetConfig, build_lab_dataset
from repro.datasets.realworld import RealWorldConfig, build_real_world_dataset
from repro.datasets.synthetic import SweepConfig, build_impairment_sweep
from repro.net.block import PacketBlock
from repro.net.trace import PacketTrace
from repro.netem.conditions import ConditionSchedule, NetworkCondition
from repro.webrtc.session import CallResult, SessionConfig, simulate_call

__version__ = "1.0.0"

__all__ = [
    "QoEPipeline",
    "PipelineEstimate",
    "PipelineConfig",
    "StreamingQoEPipeline",
    "StreamEstimate",
    "QoEMonitor",
    "MonitorReport",
    "ShardedQoEMonitor",
    "FlowShardRouter",
    "FanInSink",
    "ObsConfig",
    "MetricsRegistry",
    "MetricsLogSink",
    "render_prometheus",
    "parse_prometheus",
    "PacketSource",
    "IteratorSource",
    "TraceSource",
    "PcapSource",
    "MergedSource",
    "as_source",
    "iter_blocks",
    "PacketBlock",
    "EstimateSink",
    "CollectorSink",
    "JSONLinesSink",
    "CSVSink",
    "SummarySink",
    "FlowSummary",
    "MetricsSnapshotSink",
    "IPUDPMLEstimator",
    "RTPMLEstimator",
    "IPUDPHeuristic",
    "RTPHeuristic",
    "MediaClassifier",
    "EvaluationDataset",
    "compare_methods",
    "LabDatasetConfig",
    "build_lab_dataset",
    "RealWorldConfig",
    "build_real_world_dataset",
    "SweepConfig",
    "build_impairment_sweep",
    "PacketTrace",
    "NetworkCondition",
    "ConditionSchedule",
    "SessionConfig",
    "CallResult",
    "simulate_call",
    "__version__",
]
