"""Source-layer coverage: truncated captures and the blocks() surfaces."""

from __future__ import annotations

import pytest

from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.net.pcap import write_pcap
from repro.net.trace import PacketTrace
from repro.sources import IteratorSource, MergedSource, PcapSource, TraceSource, iter_blocks


def make_packets(n=40):
    return [
        Packet(
            timestamp=0.01 * i,
            ip=IPv4Header(src="192.0.2.10", dst=f"10.0.0.{i % 2 + 1}"),
            udp=UDPHeader(src_port=3478, dst_port=50000 + i % 2),
            payload_size=400 + i,
        )
        for i in range(n)
    ]


@pytest.fixture()
def truncated_pcap(tmp_path):
    """A capture whose final record is cut mid-way (crashed writer)."""
    path = tmp_path / "complete.pcap"
    packets = make_packets()
    write_pcap(path, packets)
    data = path.read_bytes()
    truncated = tmp_path / "truncated.pcap"
    truncated.write_bytes(data[:-17])  # slice into the last record's frame
    return truncated, packets


class TestPcapSourceTruncation:
    def test_strict_default_raises(self, truncated_pcap):
        path, _ = truncated_pcap
        with pytest.raises(ValueError, match="truncated"):
            list(PcapSource(path))

    def test_strict_false_yields_complete_records_then_stops(self, truncated_pcap):
        path, packets = truncated_pcap
        recovered = list(PcapSource(path, strict=False))
        assert len(recovered) == len(packets) - 1
        # pcap stores microsecond-quantized timestamps
        assert [p.timestamp for p in recovered] == pytest.approx(
            [p.timestamp for p in packets[:-1]], abs=1e-6
        )
        assert [p.payload_size for p in recovered] == [p.payload_size for p in packets[:-1]]

    def test_strict_false_is_repeatable(self, truncated_pcap):
        path, packets = truncated_pcap
        source = PcapSource(path, strict=False)
        assert len(list(source)) == len(packets) - 1
        assert len(list(source)) == len(packets) - 1  # re-iteration reopens the file

    def test_blocks_honour_strict_false(self, truncated_pcap):
        """The columnar reader applies the same truncation tolerance."""
        path, packets = truncated_pcap
        blocks = list(PcapSource(path, strict=False).blocks(16))
        recovered = [p for b in blocks for p in b.to_packets()]
        assert len(recovered) == len(packets) - 1
        assert [p.timestamp for p in recovered] == pytest.approx(
            [p.timestamp for p in packets[:-1]], abs=1e-6
        )

    def test_blocks_strict_raises(self, truncated_pcap):
        path, _ = truncated_pcap
        with pytest.raises(ValueError, match="truncated"):
            list(PcapSource(path).blocks(16))

    def test_truncated_mid_record_header(self, tmp_path):
        """Truncation inside the 16-byte record *header* is tolerated too."""
        path = tmp_path / "header_cut.pcap"
        packets = make_packets(5)
        write_pcap(path, packets)
        data = path.read_bytes()
        # 24-byte global header, then records; keep four full records and
        # 7 bytes of the fifth record header.
        offset = 24
        for _ in range(4):
            import struct

            captured = struct.unpack_from("<IIII", data, offset)[2]
            offset += 16 + captured
        path.write_bytes(data[: offset + 7])
        assert len(list(PcapSource(path, strict=False))) == 4
        with pytest.raises(ValueError, match="truncated record header"):
            list(PcapSource(path))


class TestBlocksSurfaces:
    def test_every_source_kind_round_trips(self, tmp_path):
        packets = make_packets()
        path = tmp_path / "capture.pcap"
        write_pcap(path, packets)
        trace = PacketTrace(packets)
        sources = [
            TraceSource(trace),
            PcapSource(path),
            IteratorSource(iter(packets)),
            MergedSource(IteratorSource(iter(packets[::2])), IteratorSource(iter(packets[1::2]))),
        ]
        for source in sources:
            recovered = [p for b in iter_blocks(source, 7) for p in b.to_packets()]
            assert [p.timestamp for p in recovered] == pytest.approx(
                [p.timestamp for p in packets], abs=1e-6
            )
            assert [p.payload_size for p in recovered] == [p.payload_size for p in packets]

    def test_trace_source_blocks_share_trace_columns(self):
        trace = PacketTrace(make_packets())
        source = TraceSource(trace)
        blocks = list(source.blocks(16))
        assert sum(len(b) for b in blocks) == len(trace)
        assert blocks[0].timestamps.base is trace.block.timestamps  # views, no copy

    def test_iter_blocks_generic_adapter_for_bare_iterables(self):
        packets = make_packets(10)
        blocks = list(iter_blocks(iter(packets), 4))
        assert [len(b) for b in blocks] == [4, 4, 2]
