"""Ground-truth media categories shared across the packet and RTP substrates.

Kept in a leaf module (no intra-package imports) so both
:mod:`repro.net.packet` and :mod:`repro.rtp.payload_types` can depend on it
without creating an import cycle.
"""

from __future__ import annotations

import enum

__all__ = ["MediaType"]


class MediaType(enum.Enum):
    """Ground-truth media type of a packet (simulator annotation).

    Mirrors the categories the paper distinguishes via the RTP payload type:
    audio, video, video retransmission, and non-RTP control traffic
    (STUN/DTLS handshakes, RTCP).
    """

    AUDIO = "audio"
    VIDEO = "video"
    VIDEO_RTX = "video_rtx"
    CONTROL = "control"

    @property
    def is_video(self) -> bool:
        return self in (MediaType.VIDEO, MediaType.VIDEO_RTX)
