"""Unit tests for linear models and k-NN baselines."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.neighbors import KNeighborsClassifier, KNeighborsRegressor


class TestLinearRegression:
    def test_recovers_exact_linear_relationship(self):
        generator = np.random.default_rng(0)
        X = generator.normal(size=(200, 3))
        y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 0.5 * X[:, 2] + 4.0
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, [2.0, -1.0, 0.5], atol=1e-8)
        assert np.isclose(model.intercept_, 4.0, atol=1e-8)

    def test_without_intercept(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([2.0, 4.0, 6.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert np.isclose(model.intercept_, 0.0)
        assert np.allclose(model.predict(X), y)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.zeros((1, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            LinearRegression().fit(np.zeros((5, 2)), np.zeros(4))


class TestRidgeRegression:
    def test_reduces_to_ols_with_zero_alpha(self):
        generator = np.random.default_rng(1)
        X = generator.normal(size=(100, 2))
        y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 1.0
        ridge = RidgeRegression(alpha=0.0).fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert np.allclose(ridge.coef_, ols.coef_, atol=1e-6)

    def test_regularisation_shrinks_coefficients(self):
        generator = np.random.default_rng(2)
        X = generator.normal(size=(50, 3))
        y = 5.0 * X[:, 0] + generator.normal(size=50)
        small = RidgeRegression(alpha=0.01).fit(X, y)
        large = RidgeRegression(alpha=1000.0).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((1, 2)))


class TestKNeighborsRegressor:
    def test_one_neighbor_memorises_training_data(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = X[:, 0] * 2.0
        model = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        assert np.allclose(model.predict(X), y)

    def test_average_of_neighbors(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0.0, 2.0, 100.0])
        model = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        # Query near 0 and 1: nearest two neighbours are those points.
        assert np.isclose(model.predict(np.array([[0.4]]))[0], 1.0)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(n_neighbors=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KNeighborsRegressor().predict(np.zeros((1, 1)))


class TestKNeighborsClassifier:
    def test_majority_vote(self):
        X = np.array([[0.0], [0.1], [0.2], [5.0]])
        y = np.array(["a", "a", "b", "b"])
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert model.predict(np.array([[0.05]]))[0] == "a"

    def test_separable_problem(self, classification_data):
        X, y = classification_data
        model = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.8

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier().fit(np.zeros((0, 2)), np.array([]))
