"""Flat-buffer codec for estimate batches: the worker -> parent wire format.

The forward data plane (PR 4/5) ships packets as struct-of-arrays
:class:`~repro.net.block.PacketBlock` buffers; the return direction still
pickled every per-tick ``[StreamEstimate]`` batch through a
``multiprocessing`` queue.  This module closes the loop: a worker's tick
batch -- four float64 metric columns, small integer code columns over
interned side tables, plus the shard's low watermark -- is encoded into one
contiguous little-endian buffer that rides a shared-memory ring slot, and
decoded on the parent side as zero-copy ``np.frombuffer`` views.

Layout (every section padded to an 8-byte boundary, mirroring the
``PacketBlock`` codec)::

    header | low watermark | meta JSON | window_starts | frame_rates |
    bitrates_kbps | frame_jitters_ms | flow_codes | resolution_codes |
    source_codes

The header is ``_HEADER`` (magic, version, flags, row count, meta length);
the watermark field is always present and ``_FLAG_WATERMARK`` says whether
it is meaningful (a shard that has seen no packets yet has none).  The meta
blob interns the side tables: the unique :class:`~repro.net.flows.FlowKey`
rows (code ``-1`` = single-flow mode's ``None``), the resolution labels
(code ``-1`` = no resolution estimate) and the source labels (``"ml"`` /
``"heuristic"``).

Metric values round-trip **bit-identically**, NaN and +/-inf included: the
columns are raw float64, nothing is formatted or re-parsed.  That is what
lets the sharded monitor's determinism contract (bit-identical estimates on
every transport) extend to the return path.
"""

from __future__ import annotations

import json
import struct
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.net.flows import FlowKey

if TYPE_CHECKING:  # runtime import would be circular (worker -> estwire)
    from repro.core.streaming import StreamEstimate

#: Anything :class:`memoryview` accepts -- the codec never copies out of it.
_Buffer = bytes | bytearray | memoryview

__all__ = ["EstimateBatch"]

_MAGIC = b"EST1"
_VERSION = 1
#: magic, version, flags, n_rows, meta_len (24 bytes, itself 8-aligned).
_HEADER = struct.Struct("<4sHHqq")
_FLAG_WATERMARK = 1 << 0
_WATERMARK = struct.Struct("<d")

#: The per-row metric columns in buffer order (attribute name, wire dtype).
_METRIC_COLUMNS: tuple[tuple[str, np.dtype], ...] = (
    ("window_starts", np.dtype("<f8")),
    ("frame_rates", np.dtype("<f8")),
    ("bitrates_kbps", np.dtype("<f8")),
    ("frame_jitters_ms", np.dtype("<f8")),
)
_FLOW_DTYPE = np.dtype("<i4")
_RESOLUTION_DTYPE = np.dtype("<i2")
_SOURCE_DTYPE = np.dtype("<i1")


def _pad8(n: int) -> int:
    """Round ``n`` up to the next multiple of 8 (section alignment)."""
    return (n + 7) & ~7


class EstimateBatch:
    """A columnar batch of :class:`~repro.core.streaming.StreamEstimate` rows.

    Construct with :meth:`from_estimates` (worker side) or :meth:`read_from`
    (parent side); the ``__init__`` signature is the trusted column-level
    constructor shared by both and performs no validation or copying.

    Attributes
    ----------
    window_starts / frame_rates / bitrates_kbps / frame_jitters_ms:
        ``float64`` metric columns, one row per estimate.
    flow_codes / flows:
        Per-row indices into the interned ``FlowKey`` side table
        (``-1`` = single-flow mode, no flow key).
    resolution_codes / resolutions:
        Per-row indices into the resolution label table (``-1`` = ``None``).
    source_codes / sources:
        Per-row indices into the source label table (always valid).
    low_watermark:
        The shard's bound on future emissions at the time the batch was
        built, or ``None`` when the shard had not seen a packet yet.
    """

    __slots__ = (
        "window_starts",
        "frame_rates",
        "bitrates_kbps",
        "frame_jitters_ms",
        "flow_codes",
        "resolution_codes",
        "source_codes",
        "flows",
        "resolutions",
        "sources",
        "low_watermark",
        "_meta_cache",
    )

    def __init__(
        self,
        window_starts: np.ndarray,
        frame_rates: np.ndarray,
        bitrates_kbps: np.ndarray,
        frame_jitters_ms: np.ndarray,
        flow_codes: np.ndarray,
        resolution_codes: np.ndarray,
        source_codes: np.ndarray,
        flows: tuple,
        resolutions: tuple,
        sources: tuple,
        low_watermark: float | None,
    ) -> None:
        self.window_starts = window_starts
        self.frame_rates = frame_rates
        self.bitrates_kbps = bitrates_kbps
        self.frame_jitters_ms = frame_jitters_ms
        self.flow_codes = flow_codes
        self.resolution_codes = resolution_codes
        self.source_codes = source_codes
        self.flows = flows
        self.resolutions = resolutions
        self.sources = sources
        self.low_watermark = low_watermark
        self._meta_cache: bytes | None = None

    def __len__(self) -> int:
        return len(self.window_starts)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_estimates(
        cls, items: Sequence[StreamEstimate], low_watermark: float | None
    ) -> "EstimateBatch":
        """Build a batch from a tick's ``[StreamEstimate]`` list.

        Raises :class:`ValueError` when a row is not flat-encodable (a
        non-string resolution/source, a flow that is not a ``FlowKey``, or a
        non-numeric metric); the worker falls back to the pickling queue for
        those, so output never depends on the transport.
        """
        n = len(items)
        window_starts = np.empty(n, dtype=_METRIC_COLUMNS[0][1])
        frame_rates = np.empty(n, dtype=_METRIC_COLUMNS[1][1])
        bitrates = np.empty(n, dtype=_METRIC_COLUMNS[2][1])
        jitters = np.empty(n, dtype=_METRIC_COLUMNS[3][1])
        flow_codes = np.empty(n, dtype=_FLOW_DTYPE)
        resolution_codes = np.empty(n, dtype=_RESOLUTION_DTYPE)
        source_codes = np.empty(n, dtype=_SOURCE_DTYPE)
        flow_table: dict[FlowKey, int] = {}
        resolution_table: dict[str, int] = {}
        source_table: dict[str, int] = {}
        try:
            for i, item in enumerate(items):
                flow = item.flow
                if flow is None:
                    flow_codes[i] = -1
                else:
                    if not isinstance(flow, FlowKey):
                        raise ValueError(f"flow {flow!r} is not a FlowKey")
                    code = flow_table.get(flow)
                    if code is None:
                        code = flow_table[flow] = len(flow_table)
                    flow_codes[i] = code
                estimate = item.estimate
                window_starts[i] = estimate.window_start
                frame_rates[i] = estimate.frame_rate
                bitrates[i] = estimate.bitrate_kbps
                jitters[i] = estimate.frame_jitter_ms
                resolution = estimate.resolution
                if resolution is None:
                    resolution_codes[i] = -1
                else:
                    if not isinstance(resolution, str):
                        raise ValueError(f"resolution {resolution!r} is not a string")
                    code = resolution_table.get(resolution)
                    if code is None:
                        code = resolution_table[resolution] = len(resolution_table)
                    resolution_codes[i] = code
                source = estimate.source
                if not isinstance(source, str):
                    raise ValueError(f"source {source!r} is not a string")
                code = source_table.get(source)
                if code is None:
                    code = source_table[source] = len(source_table)
                source_codes[i] = code
        except (TypeError, AttributeError) as exc:
            raise ValueError(f"estimate batch is not flat-encodable: {exc}") from exc
        if len(resolution_table) > 0x7FFF or len(source_table) > 0x7F:
            raise ValueError("label side table overflows its code dtype")
        return cls(
            window_starts,
            frame_rates,
            bitrates,
            jitters,
            flow_codes,
            resolution_codes,
            source_codes,
            flows=tuple(flow_table),
            resolutions=tuple(resolution_table),
            sources=tuple(source_table),
            low_watermark=low_watermark,
        )

    # -- flat-buffer codec -----------------------------------------------------

    def _codec_meta(self) -> bytes:
        """The interned side tables as a compact JSON blob (cached)."""
        if self._meta_cache is None:
            self._meta_cache = json.dumps(
                {
                    "flows": [
                        [f.src, f.src_port, f.dst, f.dst_port, f.protocol] for f in self.flows
                    ],
                    "resolutions": list(self.resolutions),
                    "sources": list(self.sources),
                },
                separators=(",", ":"),
            ).encode()
        return self._meta_cache

    def byte_size(self) -> int:
        """Encoded size of this batch in the flat-buffer layout, in bytes."""
        n = len(self)
        size = _HEADER.size + _WATERMARK.size + _pad8(len(self._codec_meta()))
        for _, dtype in _METRIC_COLUMNS:
            size += _pad8(n * dtype.itemsize)
        size += _pad8(n * _FLOW_DTYPE.itemsize)
        size += _pad8(n * _RESOLUTION_DTYPE.itemsize)
        size += _pad8(n * _SOURCE_DTYPE.itemsize)
        return size

    def write_into(self, buf: _Buffer) -> int:
        """Encode this batch into ``buf``; returns the bytes written."""
        n = len(self)
        meta = self._codec_meta()
        total = self.byte_size()
        mv = memoryview(buf)
        if len(mv) < total:
            raise ValueError(f"buffer too small: need {total} bytes, have {len(mv)}")
        flags = 0 if self.low_watermark is None else _FLAG_WATERMARK
        _HEADER.pack_into(mv, 0, _MAGIC, _VERSION, flags, n, len(meta))
        offset = _HEADER.size
        _WATERMARK.pack_into(
            mv, offset, 0.0 if self.low_watermark is None else self.low_watermark
        )
        offset += _WATERMARK.size
        mv[offset : offset + len(meta)] = meta
        offset += _pad8(len(meta))

        def put(values: np.ndarray, dtype: np.dtype) -> None:
            nonlocal offset
            dest = np.frombuffer(mv, dtype=dtype, count=n, offset=offset)
            dest[:] = values
            offset += _pad8(n * dtype.itemsize)

        for name, dtype in _METRIC_COLUMNS:
            put(getattr(self, name), dtype)
        put(self.flow_codes, _FLOW_DTYPE)
        put(self.resolution_codes, _RESOLUTION_DTYPE)
        put(self.source_codes, _SOURCE_DTYPE)
        return offset

    @classmethod
    def read_from(cls, buf: _Buffer) -> "EstimateBatch":
        """Decode a batch encoded by :meth:`write_into`, zero-copy.

        Every column is an ``np.frombuffer`` *view* over ``buf``; the caller
        owns the buffer's lifetime and must drop the batch (and anything
        derived from its columns by reference) before recycling it.  Raises
        :class:`ValueError` for a wrong magic/version or a truncated buffer.
        """
        mv = memoryview(buf)
        if len(mv) < _HEADER.size + _WATERMARK.size:
            raise ValueError(
                f"truncated estimate batch: {len(mv)} bytes is shorter than the header"
            )
        magic, version, flags, n, meta_len = _HEADER.unpack_from(mv, 0)
        if magic != _MAGIC:
            raise ValueError(f"not a flat-encoded estimate batch (magic {magic!r})")
        if version != _VERSION:
            raise ValueError(f"unsupported estimate codec version {version}")
        if n < 0 or meta_len < 0:
            raise ValueError("corrupt estimate batch header (negative section size)")
        offset = _HEADER.size
        (watermark,) = _WATERMARK.unpack_from(mv, offset)
        offset += _WATERMARK.size
        total = offset + _pad8(meta_len)
        for _, dtype in _METRIC_COLUMNS:
            total += _pad8(n * dtype.itemsize)
        total += _pad8(n * _FLOW_DTYPE.itemsize)
        total += _pad8(n * _RESOLUTION_DTYPE.itemsize)
        total += _pad8(n * _SOURCE_DTYPE.itemsize)
        if len(mv) < total:
            raise ValueError(
                f"truncated estimate batch: need {total} bytes, have {len(mv)}"
            )
        meta = json.loads(bytes(mv[offset : offset + meta_len]))
        offset += _pad8(meta_len)

        def get(dtype: np.dtype) -> np.ndarray:
            nonlocal offset
            column = np.frombuffer(mv, dtype=dtype, count=n, offset=offset)
            offset += _pad8(n * dtype.itemsize)
            return column

        columns = [get(dtype) for _, dtype in _METRIC_COLUMNS]
        flow_codes = get(_FLOW_DTYPE)
        resolution_codes = get(_RESOLUTION_DTYPE)
        source_codes = get(_SOURCE_DTYPE)
        return cls(
            *columns,
            flow_codes,
            resolution_codes,
            source_codes,
            flows=tuple(
                FlowKey(src=src, src_port=src_port, dst=dst, dst_port=dst_port, protocol=protocol)
                for src, src_port, dst, dst_port, protocol in meta["flows"]
            ),
            resolutions=tuple(meta["resolutions"]),
            sources=tuple(meta["sources"]),
            low_watermark=watermark if flags & _FLAG_WATERMARK else None,
        )

    # -- materialization -------------------------------------------------------

    def to_estimates(self) -> list:
        """Materialize the batch back into ``[StreamEstimate]``, bit-identical.

        Uses the dataclasses' ``_from_wire`` fast constructors (the same
        shortcut unpickling takes), so the zero-pickle return path does not
        give back its savings re-validating frozen dataclass fields.
        """
        from repro.core.pipeline import PipelineEstimate
        from repro.core.streaming import StreamEstimate

        flows = self.flows
        resolutions = self.resolutions
        sources = self.sources
        items = []
        append = items.append
        for ws, fr, br, jit, fc, rc, sc in zip(
            self.window_starts.tolist(),
            self.frame_rates.tolist(),
            self.bitrates_kbps.tolist(),
            self.frame_jitters_ms.tolist(),
            self.flow_codes.tolist(),
            self.resolution_codes.tolist(),
            self.source_codes.tolist(),
        ):
            estimate = PipelineEstimate._from_wire(
                ws, fr, br, jit, resolutions[rc] if rc >= 0 else None, sources[sc]
            )
            append(StreamEstimate._from_wire(flows[fc] if fc >= 0 else None, estimate))
        return items
