"""Unit tests for cross-validation utilities."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression
from repro.ml.model_selection import (
    GroupKFold,
    KFold,
    StratifiedKFold,
    cross_val_predict,
    train_test_split,
)


class TestKFold:
    def test_partitions_every_sample_exactly_once(self):
        X = np.arange(23).reshape(-1, 1)
        seen = []
        for train_idx, test_idx in KFold(n_splits=5, random_state=0).split(X):
            assert set(train_idx) & set(test_idx) == set()
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(23))

    def test_number_of_folds(self):
        X = np.arange(10).reshape(-1, 1)
        folds = list(KFold(n_splits=5, shuffle=False).split(X))
        assert len(folds) == 5

    def test_no_shuffle_is_contiguous(self):
        X = np.arange(10).reshape(-1, 1)
        first_test = next(iter(KFold(n_splits=5, shuffle=False).split(X)))[1]
        assert list(first_test) == [0, 1]

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.zeros((3, 1))))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestStratifiedKFold:
    def test_class_balance_preserved(self):
        y = np.array(["a"] * 40 + ["b"] * 10)
        X = np.zeros((50, 1))
        for _, test_idx in StratifiedKFold(n_splits=5, random_state=0).split(X, y):
            labels = y[test_idx]
            assert np.sum(labels == "a") == 8
            assert np.sum(labels == "b") == 2

    def test_covers_all_samples(self):
        y = np.array([0, 1] * 15)
        X = np.zeros((30, 1))
        seen = []
        for _, test_idx in StratifiedKFold(n_splits=3, random_state=1).split(X, y):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(30))


class TestGroupKFold:
    def test_groups_never_split_across_folds(self):
        groups = np.repeat(np.arange(10), 6)
        X = np.zeros((60, 1))
        for train_idx, test_idx in GroupKFold(n_splits=5).split(X, groups=groups):
            assert set(groups[train_idx]) & set(groups[test_idx]) == set()

    def test_requires_groups(self):
        with pytest.raises(ValueError):
            list(GroupKFold(n_splits=2).split(np.zeros((4, 1))))

    def test_more_folds_than_groups_raises(self):
        groups = np.array([0, 0, 1, 1])
        with pytest.raises(ValueError):
            list(GroupKFold(n_splits=3).split(np.zeros((4, 1)), groups=groups))


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.arange(100)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2, random_state=0)
        assert len(X_test) == 20
        assert len(X_train) == 80
        assert len(y_train) == 80 and len(y_test) == 20

    def test_rows_stay_aligned(self):
        X = np.arange(50).reshape(-1, 1)
        y = np.arange(50) * 10
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.3, random_state=3)
        assert np.all(y_train == X_train[:, 0] * 10)
        assert np.all(y_test == X_test[:, 0] * 10)

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1)), test_size=1.5)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1)), np.zeros(4))


class TestCrossValPredict:
    def test_every_sample_predicted(self):
        generator = np.random.default_rng(0)
        X = generator.normal(size=(60, 2))
        y = X @ np.array([1.0, -2.0]) + 0.5
        predictions = cross_val_predict(LinearRegression, X, y, cv=KFold(5, random_state=0))
        assert predictions.shape == (60,)
        assert np.all(np.isfinite(predictions))

    def test_out_of_fold_predictions_reasonable(self):
        generator = np.random.default_rng(1)
        X = generator.normal(size=(100, 2))
        y = 3.0 * X[:, 0] + generator.normal(scale=0.01, size=100)
        predictions = cross_val_predict(LinearRegression, X, y)
        assert np.mean(np.abs(predictions - y)) < 0.1
