"""Packet substrate: packet dataclasses, binary header codecs, pcap I/O,
trace containers and flow utilities.

This package plays the role that ``scapy``/``tcpdump`` play for the paper's
data collection pipeline: everything downstream (media classification,
feature extraction, the heuristics) consumes :class:`repro.net.trace.PacketTrace`
objects holding timestamped :class:`repro.net.packet.Packet` records, and
traces can be persisted to / loaded from standard libpcap files.
"""

from repro.net.block import PacketBlock, blocks_from_packets
from repro.net.flows import FlowKey, FlowTable, five_tuple
from repro.net.headers import (
    ETHERNET_HEADER_LEN,
    IPV4_HEADER_MIN_LEN,
    UDP_HEADER_LEN,
    decode_ethernet_ipv4_udp,
    encode_ethernet_ipv4_udp,
)
from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.net.pcap import PcapReader, PcapWriter, read_pcap, write_pcap
from repro.net.trace import PacketTrace, TraceStats

__all__ = [
    "Packet",
    "IPv4Header",
    "UDPHeader",
    "PacketBlock",
    "blocks_from_packets",
    "PacketTrace",
    "TraceStats",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
    "FlowKey",
    "FlowTable",
    "five_tuple",
    "decode_ethernet_ipv4_udp",
    "encode_ethernet_ipv4_udp",
    "ETHERNET_HEADER_LEN",
    "IPV4_HEADER_MIN_LEN",
    "UDP_HEADER_LEN",
]
