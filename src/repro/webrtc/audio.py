"""Audio stream model.

WebRTC audio (OPUS) is a constant-packet-rate stream of small packets: one
packet every 20 ms, with sizes between roughly 89 and 385 bytes depending on
the encoded audio complexity (Figure 1).  Because audio packets are so much
smaller than video packets, the paper's media classification separates the
two with a simple size threshold; this module provides the audio side of that
picture.
"""

from __future__ import annotations

import numpy as np

from repro.net.packet import IPv4Header, MediaType, Packet, UDPHeader
from repro.rtp.header import AUDIO_CLOCK_RATE, RTPHeader
from repro.webrtc.packetizer import PacketizerConfig
from repro.webrtc.profiles import VCAProfile

__all__ = ["AudioStream"]


class AudioStream:
    """Generates the OPUS-like audio packet stream for one sender."""

    def __init__(
        self,
        profile: VCAProfile,
        config: PacketizerConfig,
        rng: np.random.Generator,
    ) -> None:
        self.profile = profile
        self.config = config
        self.rng = rng
        self._sequence = int(rng.integers(0, 1 << 15))
        self._timestamp_base = int(rng.integers(0, 1 << 30))
        # Audio loudness / complexity drifts slowly, moving packet sizes
        # around inside the [min, max] band.
        self._complexity = rng.uniform(0.3, 0.7)

    def _next_sequence(self) -> int:
        value = self._sequence & 0xFFFF
        self._sequence += 1
        return value

    def generate_second(self, start_time: float) -> list[Packet]:
        """Audio packets departing in ``[start_time, start_time + 1)``."""
        packets_per_second = self.profile.audio_packet_rate
        n_packets = int(round(packets_per_second))
        if n_packets <= 0:
            return []
        interval = 1.0 / n_packets
        low, high = self.profile.audio_size_range

        self._complexity = float(np.clip(self._complexity + self.rng.normal(0.0, 0.05), 0.05, 0.95))

        packets: list[Packet] = []
        for i in range(n_packets):
            departure = start_time + i * interval + self.rng.uniform(0.0, interval * 0.05)
            centre = low + self._complexity * (high - low)
            size = int(np.clip(self.rng.normal(centre, 25.0), low, high))
            header = RTPHeader(
                payload_type=self.config.payload_type,
                sequence_number=self._next_sequence(),
                timestamp=(self._timestamp_base + int(departure * AUDIO_CLOCK_RATE)) & 0xFFFFFFFF,
                ssrc=self.config.ssrc,
                marker=False,
            )
            packets.append(
                Packet(
                    timestamp=departure,
                    ip=IPv4Header(src=self.config.src_ip, dst=self.config.dst_ip),
                    udp=UDPHeader(
                        src_port=self.config.src_port,
                        dst_port=self.config.dst_port,
                        length=size + 8,
                    ),
                    payload_size=size,
                    rtp=header,
                    media_type=MediaType.AUDIO,
                )
            )
        return packets
