"""Columnar packet batches: the struct-of-arrays hot-path representation.

The estimators only ever read IP/UDP *header fields* -- a timestamp, the
5-tuple, a payload size -- yet moving packets as individual frozen
:class:`~repro.net.packet.Packet` dataclasses makes every layer pay Python
object overhead per packet (attribute lookups, dataclass construction, and,
worst of all, pickling object lists across the cluster's process boundary).
:class:`PacketBlock` is the standard passive-measurement fix: a batch of
packets stored as parallel NumPy arrays (struct of arrays), with small
side tables interning the variable-width values:

* ``addresses`` -- the unique address strings of the block; per-packet
  ``src_codes`` / ``dst_codes`` are integer indices into it;
* ``flows`` -- the unique unidirectional 5-tuples
  (:class:`~repro.net.flows.FlowKey`) of the block; the per-packet
  ``flow_codes`` column is the pre-computed demultiplexing key, so the
  engine groups a block by flow with one stable argsort instead of one
  dict lookup per packet.

Optional columns carry what the RTP baselines and the evaluation code need
(parsed RTP headers, ground-truth media types and frame ids); blocks built
from IP/UDP-only captures simply omit them.  Per-packet ``metadata`` dicts
are simulator-side bookkeeping and are **not** columnar: a block built via
:meth:`PacketBlock.from_packets` keeps the original ``Packet`` objects as a
zero-copy cache (so in-process consumers that need real packets get the
originals back, metadata included), but the cache is dropped on pickling --
what crosses a process boundary is arrays only, which is the point.

Slicing is O(1) per column (NumPy views); :meth:`take` and
:meth:`concat` cover routing fan-out and chunk re-assembly.  Blocks are
immutable by convention: nothing in this package mutates a column after
construction, and consumers must not either.
"""

from __future__ import annotations

import json
import struct
from collections.abc import Iterable, Sequence
from typing import Iterator

import numpy as np

from repro.net.flows import FlowKey
from repro.net.media import MediaType
from repro.net.packet import RTP_FIXED_HEADER_LEN, IPv4Header, Packet, UDPHeader

__all__ = ["PacketBlock", "blocks_from_packets"]

#: Stable media-type coding for the optional ground-truth column (-1 = None).
_MEDIA_ORDER: tuple[MediaType, ...] = tuple(MediaType)
_MEDIA_CODE = {media: code for code, media in enumerate(_MEDIA_ORDER)}

# -- flat-buffer codec layout (the shared-memory wire format) ------------------
#
# A block encodes into one contiguous little-endian buffer:
#
#   header | meta JSON | column 0 | column 1 | ... | [media_codes] | [frame_ids]
#
# where the header is ``_CODEC_HEADER`` (magic, version, flags, row count,
# meta length), the meta blob is the interned side tables (addresses + flow
# keys) as compact JSON, and every section is padded to an 8-byte boundary so
# each column lands aligned for its dtype and ``read_from`` can hand out
# zero-copy ``np.frombuffer`` views.  RTP columns are object arrays and have
# no flat encoding; the shm transport falls back to the pickling queue for
# blocks that carry them (rare outside the simulator).

_CODEC_MAGIC = b"PBK1"
_CODEC_VERSION = 1
#: magic, version, flags, n_rows, meta_len (24 bytes, itself 8-aligned).
_CODEC_HEADER = struct.Struct("<4sHHqq")
_CODEC_FLAG_MEDIA = 1 << 0
_CODEC_FLAG_FRAMES = 1 << 1

#: Explicit little-endian dtypes, shared by the wire sections below and the
#: in-memory column constructions (``from_packets``/``concat``/``compact``):
#: one definition means "wire dtypes equal from_packets dtypes" holds by
#: construction, not by little-endian-host coincidence (CODEC001).
_F8 = np.dtype("<f8")
_I8 = np.dtype("<i8")
_I4 = np.dtype("<i4")
_I2 = np.dtype("<i2")
_I1 = np.dtype("<i1")

#: The per-row numeric columns in buffer order, with their wire dtypes
#: (identical to what :meth:`PacketBlock.from_packets` builds, so a decoded
#: block computes bit-identically to the block that was encoded).
_CODEC_COLUMNS: tuple[tuple[str, np.dtype], ...] = (
    ("timestamps", _F8),
    ("sizes", _I8),
    ("src_codes", _I4),
    ("dst_codes", _I4),
    ("src_ports", _I4),
    ("dst_ports", _I4),
    ("protocols", _I2),
    ("ttls", _I2),
    ("total_lengths", _I4),
    ("udp_lengths", _I4),
    ("flow_codes", _I4),
)
_CODEC_MEDIA_DTYPE = _I1
_CODEC_FRAME_DTYPE = _I8


def _pad8(n: int) -> int:
    """Round ``n`` up to the next multiple of 8 (section alignment)."""
    return (n + 7) & ~7


class _BlockRow:
    """A lightweight packet stand-in built from one block row.

    Exposes exactly the attributes the streaming operators read off a
    :class:`~repro.net.packet.Packet` in IP/UDP-only mode -- ``timestamp``,
    ``payload_size`` and the derived ``media_payload_size`` -- without the
    dataclass construction and validation cost.  Used by the engine's block
    path when the block carries no cached packet objects (i.e. it crossed a
    process boundary); operators needing anything else (RTP headers, ground
    truth) must materialize real packets via :meth:`PacketBlock.to_packets`.
    """

    __slots__ = ("timestamp", "payload_size")

    def __init__(self, timestamp: float, payload_size: int) -> None:
        self.timestamp = timestamp
        self.payload_size = payload_size

    @property
    def media_payload_size(self) -> int:
        return max(0, self.payload_size - RTP_FIXED_HEADER_LEN)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_BlockRow(timestamp={self.timestamp!r}, payload_size={self.payload_size!r})"


class PacketBlock:
    """An immutable struct-of-arrays batch of packets.

    Construct via :meth:`from_packets` (or receive one from a source's
    ``blocks()`` iterator / the cluster transport); the ``__init__`` signature
    is the trusted column-level constructor and performs no validation or
    copying beyond what callers hand it.

    Attributes
    ----------
    timestamps / sizes:
        ``float64`` receive times and ``int64`` UDP payload sizes.
    src_codes / dst_codes / addresses:
        Integer-coded endpoint addresses (indices into ``addresses``).
    src_ports / dst_ports / protocols / ttls / total_lengths / udp_lengths:
        The remaining IP/UDP header columns, enough to rebuild the exact
        :class:`~repro.net.packet.IPv4Header` / ``UDPHeader`` pair.
    flow_codes / flows:
        Per-packet indices into the unique unidirectional
        :class:`~repro.net.flows.FlowKey` table (first-seen order).
    rtp / media_codes / frame_ids:
        Optional columns (``None`` when absent block-wide): parsed RTP
        headers (object array), ground-truth media-type codes (``int8``,
        -1 = none) and frame ids (``int64``, -1 = none).
    """

    __slots__ = (
        "timestamps",
        "sizes",
        "src_codes",
        "dst_codes",
        "src_ports",
        "dst_ports",
        "protocols",
        "ttls",
        "total_lengths",
        "udp_lengths",
        "flow_codes",
        "addresses",
        "flows",
        "rtp",
        "media_codes",
        "frame_ids",
        "_packets",
        "_meta_cache",
    )

    def __init__(
        self,
        timestamps: np.ndarray,
        sizes: np.ndarray,
        src_codes: np.ndarray,
        dst_codes: np.ndarray,
        src_ports: np.ndarray,
        dst_ports: np.ndarray,
        protocols: np.ndarray,
        ttls: np.ndarray,
        total_lengths: np.ndarray,
        udp_lengths: np.ndarray,
        flow_codes: np.ndarray,
        addresses: tuple[str, ...],
        flows: tuple[FlowKey, ...],
        rtp: np.ndarray | None = None,
        media_codes: np.ndarray | None = None,
        frame_ids: np.ndarray | None = None,
        _packets: tuple[Packet, ...] | None = None,
    ) -> None:
        self.timestamps = timestamps
        self.sizes = sizes
        self.src_codes = src_codes
        self.dst_codes = dst_codes
        self.src_ports = src_ports
        self.dst_ports = dst_ports
        self.protocols = protocols
        self.ttls = ttls
        self.total_lengths = total_lengths
        self.udp_lengths = udp_lengths
        self.flow_codes = flow_codes
        self.addresses = addresses
        self.flows = flows
        self.rtp = rtp
        self.media_codes = media_codes
        self.frame_ids = frame_ids
        self._packets = _packets
        # Lazily-encoded codec side tables (blocks are immutable, so the
        # bytes can be computed once and shared by byte_size/write_into).
        self._meta_cache: bytes | None = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_packets(cls, packets: Sequence[Packet], keep_packets: bool = True) -> "PacketBlock":
        """Columnarize ``packets`` (kept in the given order).

        One pass fills every column and interns addresses and flow keys.
        With ``keep_packets`` (the default) the original objects ride along
        as an in-process cache -- :meth:`to_packets` then returns them
        verbatim (metadata and all) at zero cost; the cache never survives
        pickling.
        """
        packets = packets if isinstance(packets, (list, tuple)) else list(packets)
        n = len(packets)
        timestamps = np.empty(n, dtype=_F8)
        sizes = np.empty(n, dtype=_I8)
        src_codes = np.empty(n, dtype=_I4)
        dst_codes = np.empty(n, dtype=_I4)
        src_ports = np.empty(n, dtype=_I4)
        dst_ports = np.empty(n, dtype=_I4)
        protocols = np.empty(n, dtype=_I2)
        ttls = np.empty(n, dtype=_I2)
        total_lengths = np.empty(n, dtype=_I4)
        udp_lengths = np.empty(n, dtype=_I4)
        flow_codes = np.empty(n, dtype=_I4)

        addr_codes: dict[str, int] = {}
        flow_table: dict[tuple, int] = {}
        flow_keys: list[FlowKey] = []
        rtp_list: list | None = None
        media_list: list[int] | None = None
        frame_list: list[int] | None = None

        for i, packet in enumerate(packets):
            ip = packet.ip
            udp = packet.udp
            timestamps[i] = packet.timestamp
            sizes[i] = packet.payload_size
            src = addr_codes.setdefault(ip.src, len(addr_codes))
            dst = addr_codes.setdefault(ip.dst, len(addr_codes))
            src_codes[i] = src
            dst_codes[i] = dst
            src_ports[i] = udp.src_port
            dst_ports[i] = udp.dst_port
            protocols[i] = ip.protocol
            ttls[i] = ip.ttl
            total_lengths[i] = ip.total_length
            udp_lengths[i] = udp.length
            composite = (src, udp.src_port, dst, udp.dst_port, ip.protocol)
            code = flow_table.get(composite)
            if code is None:
                code = len(flow_table)
                flow_table[composite] = code
                flow_keys.append(
                    FlowKey(
                        src=ip.src,
                        src_port=udp.src_port,
                        dst=ip.dst,
                        dst_port=udp.dst_port,
                        protocol=ip.protocol,
                    )
                )
            flow_codes[i] = code
            if packet.rtp is not None:
                if rtp_list is None:
                    rtp_list = [None] * n
                rtp_list[i] = packet.rtp
            if packet.media_type is not None:
                if media_list is None:
                    media_list = [-1] * n
                media_list[i] = _MEDIA_CODE[packet.media_type]
            if packet.frame_id is not None:
                if packet.frame_id < 0:
                    raise ValueError(f"negative frame_id cannot be columnarized: {packet.frame_id}")
                if frame_list is None:
                    frame_list = [-1] * n
                frame_list[i] = packet.frame_id

        rtp = None
        if rtp_list is not None:
            rtp = np.empty(n, dtype=object)
            rtp[:] = rtp_list
        return cls(
            timestamps=timestamps,
            sizes=sizes,
            src_codes=src_codes,
            dst_codes=dst_codes,
            src_ports=src_ports,
            dst_ports=dst_ports,
            protocols=protocols,
            ttls=ttls,
            total_lengths=total_lengths,
            udp_lengths=udp_lengths,
            flow_codes=flow_codes,
            addresses=tuple(addr_codes),
            flows=tuple(flow_keys),
            rtp=rtp,
            media_codes=np.asarray(media_list, dtype=_I1) if media_list is not None else None,
            frame_ids=np.asarray(frame_list, dtype=_I8) if frame_list is not None else None,
            _packets=tuple(packets) if keep_packets else None,
        )

    @classmethod
    def concat(cls, blocks: Sequence["PacketBlock"]) -> "PacketBlock":
        """Concatenate ``blocks`` into one, re-interning addresses and flows.

        Row order is the concatenation order; the merged side tables keep
        first-seen order across blocks, so codes stay dense and stable.
        """
        blocks = list(blocks)
        if not blocks:
            return cls.from_packets([])
        if len(blocks) == 1:
            return blocks[0]
        addr_codes: dict[str, int] = {}
        flow_table: dict[tuple, int] = {}
        flow_keys: list[FlowKey] = []
        addr_maps: list[np.ndarray] = []
        flow_maps: list[np.ndarray] = []
        for block in blocks:
            addr_maps.append(
                np.array(
                    [addr_codes.setdefault(addr, len(addr_codes)) for addr in block.addresses],
                    dtype=_I4,
                )
            )
            remap = np.empty(len(block.flows), dtype=_I4)
            for local, flow in enumerate(block.flows):
                # Resolve via the merged address table (flow addresses are
                # guaranteed to be in the block's own table).
                src = addr_codes[flow.src]
                dst = addr_codes[flow.dst]
                composite = (src, flow.src_port, dst, flow.dst_port, flow.protocol)
                code = flow_table.get(composite)
                if code is None:
                    code = len(flow_table)
                    flow_table[composite] = code
                    flow_keys.append(flow)
                remap[local] = code
            flow_maps.append(remap)

        def cat(name: str) -> np.ndarray:
            return np.concatenate([getattr(b, name) for b in blocks])

        n = sum(len(b) for b in blocks)
        rtp = None
        if any(b.rtp is not None for b in blocks):
            rtp = np.empty(n, dtype=object)
            offset = 0
            for b in blocks:
                if b.rtp is not None:
                    rtp[offset : offset + len(b)] = b.rtp
                offset += len(b)
        media_codes = None
        if any(b.media_codes is not None for b in blocks):
            media_codes = np.concatenate(
                [
                    b.media_codes
                    if b.media_codes is not None
                    else np.full(len(b), -1, dtype=_I1)
                    for b in blocks
                ]
            )
        frame_ids = None
        if any(b.frame_ids is not None for b in blocks):
            frame_ids = np.concatenate(
                [
                    b.frame_ids
                    if b.frame_ids is not None
                    else np.full(len(b), -1, dtype=_I8)
                    for b in blocks
                ]
            )
        packets: tuple[Packet, ...] | None = None
        if all(b._packets is not None for b in blocks):
            packets = tuple(p for b in blocks for p in b._packets)
        return cls(
            timestamps=cat("timestamps"),
            sizes=cat("sizes"),
            src_codes=np.concatenate(
                [m[b.src_codes] for b, m in zip(blocks, addr_maps)]
            ),
            dst_codes=np.concatenate(
                [m[b.dst_codes] for b, m in zip(blocks, addr_maps)]
            ),
            src_ports=cat("src_ports"),
            dst_ports=cat("dst_ports"),
            protocols=cat("protocols"),
            ttls=cat("ttls"),
            total_lengths=cat("total_lengths"),
            udp_lengths=cat("udp_lengths"),
            flow_codes=np.concatenate(
                [m[b.flow_codes] for b, m in zip(blocks, flow_maps)]
            ),
            addresses=tuple(addr_codes),
            flows=tuple(flow_keys),
            rtp=rtp,
            media_codes=media_codes,
            frame_ids=frame_ids,
            _packets=packets,
        )

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    def __getitem__(self, index: slice) -> "PacketBlock":
        """Slice the block: O(1) array views sharing the side tables."""
        if not isinstance(index, slice):
            raise TypeError("PacketBlock indexing requires a slice; use to_packets() for rows")
        return PacketBlock(
            timestamps=self.timestamps[index],
            sizes=self.sizes[index],
            src_codes=self.src_codes[index],
            dst_codes=self.dst_codes[index],
            src_ports=self.src_ports[index],
            dst_ports=self.dst_ports[index],
            protocols=self.protocols[index],
            ttls=self.ttls[index],
            total_lengths=self.total_lengths[index],
            udp_lengths=self.udp_lengths[index],
            flow_codes=self.flow_codes[index],
            addresses=self.addresses,
            flows=self.flows,
            rtp=self.rtp[index] if self.rtp is not None else None,
            media_codes=self.media_codes[index] if self.media_codes is not None else None,
            frame_ids=self.frame_ids[index] if self.frame_ids is not None else None,
            _packets=self._packets[index] if self._packets is not None else None,
        )

    def take(self, indices: np.ndarray, keep_packets: bool = True) -> "PacketBlock":
        """The sub-block of rows at ``indices`` (in that order).

        ``keep_packets=False`` drops the packet-object cache even when
        present -- the router uses it for sub-blocks headed for a process
        boundary, where materializing the sub-tuple would be pure waste.
        """
        packets = None
        if keep_packets and self._packets is not None:
            source = self._packets
            packets = tuple(source[i] for i in indices)
        return PacketBlock(
            timestamps=self.timestamps[indices],
            sizes=self.sizes[indices],
            src_codes=self.src_codes[indices],
            dst_codes=self.dst_codes[indices],
            src_ports=self.src_ports[indices],
            dst_ports=self.dst_ports[indices],
            protocols=self.protocols[indices],
            ttls=self.ttls[indices],
            total_lengths=self.total_lengths[indices],
            udp_lengths=self.udp_lengths[indices],
            flow_codes=self.flow_codes[indices],
            addresses=self.addresses,
            flows=self.flows,
            rtp=self.rtp[indices] if self.rtp is not None else None,
            media_codes=self.media_codes[indices] if self.media_codes is not None else None,
            frame_ids=self.frame_ids[indices] if self.frame_ids is not None else None,
            _packets=packets,
        )

    def compact(self) -> "PacketBlock":
        """Re-intern the side tables to the rows actually present.

        Slices share their parent's ``flows`` / ``addresses`` tables, which
        is ideal in-process (O(1) slicing) but wrong for the wire: a chunk
        sliced from a whole-capture block would otherwise ship the entire
        capture's flow-key table with every message.  ``compact`` rebuilds
        dense tables covering only this block's rows and remaps the code
        columns; a block whose tables are already dense is returned as-is.
        """
        n = len(self.timestamps)
        flow_present = np.unique(self.flow_codes) if n else np.empty(0, dtype=_I8)
        addr_present = (
            np.unique(np.concatenate((self.src_codes, self.dst_codes)))
            if n
            else np.empty(0, dtype=_I8)
        )
        if len(flow_present) == len(self.flows) and len(addr_present) == len(self.addresses):
            return self
        flow_map = np.zeros(len(self.flows) + 1, dtype=_I4)
        flow_map[flow_present] = np.arange(len(flow_present), dtype=_I4)
        addr_map = np.zeros(len(self.addresses) + 1, dtype=_I4)
        addr_map[addr_present] = np.arange(len(addr_present), dtype=_I4)
        return PacketBlock(
            timestamps=self.timestamps,
            sizes=self.sizes,
            src_codes=addr_map[self.src_codes],
            dst_codes=addr_map[self.dst_codes],
            src_ports=self.src_ports,
            dst_ports=self.dst_ports,
            protocols=self.protocols,
            ttls=self.ttls,
            total_lengths=self.total_lengths,
            udp_lengths=self.udp_lengths,
            flow_codes=flow_map[self.flow_codes],
            addresses=tuple(self.addresses[i] for i in addr_present.tolist()),
            flows=tuple(self.flows[i] for i in flow_present.tolist()),
            rtp=self.rtp,
            media_codes=self.media_codes,
            frame_ids=self.frame_ids,
            _packets=self._packets,
        )

    def without_packet_cache(self) -> "PacketBlock":
        """This block minus the in-process packet-object cache (shared columns)."""
        if self._packets is None:
            return self
        return PacketBlock(
            timestamps=self.timestamps,
            sizes=self.sizes,
            src_codes=self.src_codes,
            dst_codes=self.dst_codes,
            src_ports=self.src_ports,
            dst_ports=self.dst_ports,
            protocols=self.protocols,
            ttls=self.ttls,
            total_lengths=self.total_lengths,
            udp_lengths=self.udp_lengths,
            flow_codes=self.flow_codes,
            addresses=self.addresses,
            flows=self.flows,
            rtp=self.rtp,
            media_codes=self.media_codes,
            frame_ids=self.frame_ids,
            _packets=None,
        )

    # -- grouping --------------------------------------------------------------

    def flow_groups(self) -> list[tuple[int, np.ndarray]]:
        """``(flow_code, row_indices)`` per flow, in first-appearance order.

        Row indices are ascending within each group (one stable argsort over
        the pre-computed codes -- the vectorized demultiplex), so feeding the
        groups preserves each flow's arrival order exactly.
        """
        codes = self.flow_codes
        n = len(codes)
        if n == 0:
            return []
        if len(self.flows) == 1 or bool((codes == codes[0]).all()):
            return [(int(codes[0]), np.arange(n))]
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        groups = [
            (int(sorted_codes[a]), order[a:b]) for a, b in zip(starts.tolist(), ends.tolist())
        ]
        groups.sort(key=lambda item: int(item[1][0]))
        return groups

    # -- materialization -------------------------------------------------------

    @property
    def has_packet_cache(self) -> bool:
        """Whether the original packet objects are still attached (in-process)."""
        return self._packets is not None

    def to_packets(self) -> list[Packet]:
        """Materialize :class:`~repro.net.packet.Packet` objects for the block.

        Returns the cached originals when the block never left the process;
        otherwise reconstructs packets from the columns (header fields, RTP
        and ground-truth columns round-trip exactly; per-packet ``metadata``
        dicts do not cross the columnar representation).
        """
        if self._packets is not None:
            return list(self._packets)
        addresses = self.addresses
        rtp = self.rtp
        media_codes = self.media_codes
        frame_ids = self.frame_ids
        packets: list[Packet] = []
        for i in range(len(self.timestamps)):
            media = None
            if media_codes is not None and media_codes[i] >= 0:
                media = _MEDIA_ORDER[media_codes[i]]
            frame_id = None
            if frame_ids is not None and frame_ids[i] >= 0:
                frame_id = int(frame_ids[i])
            packets.append(
                Packet(
                    timestamp=float(self.timestamps[i]),
                    ip=IPv4Header(
                        src=addresses[self.src_codes[i]],
                        dst=addresses[self.dst_codes[i]],
                        ttl=int(self.ttls[i]),
                        protocol=int(self.protocols[i]),
                        total_length=int(self.total_lengths[i]),
                    ),
                    udp=UDPHeader(
                        src_port=int(self.src_ports[i]),
                        dst_port=int(self.dst_ports[i]),
                        length=int(self.udp_lengths[i]),
                    ),
                    payload_size=int(self.sizes[i]),
                    rtp=rtp[i] if rtp is not None else None,
                    media_type=media,
                    frame_id=frame_id,
                )
            )
        return packets

    def packet_rows(self, indices: np.ndarray) -> list:
        """Objects usable by the IP/UDP streaming operators, one per index.

        Cached originals when available (zero cost, full fidelity);
        otherwise lightweight rows exposing ``timestamp`` / ``payload_size``
        / ``media_payload_size`` -- all the engine's heuristic operators read.
        """
        if self._packets is not None:
            source = self._packets
            return [source[i] for i in indices]
        ts = self.timestamps
        sizes = self.sizes
        return [_BlockRow(float(ts[i]), int(sizes[i])) for i in indices]

    def iter_packets(self) -> Iterator[Packet]:
        return iter(self.to_packets())

    # -- flat-buffer codec (the shared-memory wire format) ---------------------

    def _codec_meta(self) -> bytes:
        """The interned side tables as a compact JSON blob (cached)."""
        if self._meta_cache is None:
            self._meta_cache = json.dumps(
                {
                    "addresses": list(self.addresses),
                    "flows": [
                        [f.src, f.src_port, f.dst, f.dst_port, f.protocol] for f in self.flows
                    ],
                },
                separators=(",", ":"),
            ).encode()
        return self._meta_cache

    def _codec_check(self) -> None:
        if self.rtp is not None:
            raise ValueError(
                "blocks with RTP columns (object arrays) are not flat-encodable; "
                "send them over the pickling transport instead"
            )

    def byte_size(self) -> int:
        """Encoded size of this block in the flat-buffer layout, in bytes.

        Raises :class:`ValueError` for blocks carrying an RTP column (object
        arrays have no flat encoding); everything else -- including the
        optional ground-truth columns -- encodes.
        """
        self._codec_check()
        n = len(self.timestamps)
        size = _CODEC_HEADER.size + _pad8(len(self._codec_meta()))
        for _, dtype in _CODEC_COLUMNS:
            size += _pad8(n * dtype.itemsize)
        if self.media_codes is not None:
            size += _pad8(n * _CODEC_MEDIA_DTYPE.itemsize)
        if self.frame_ids is not None:
            size += _pad8(n * _CODEC_FRAME_DTYPE.itemsize)
        return size

    def write_into(self, buf: memoryview) -> int:
        """Encode this block into ``buf``; returns the bytes written.

        The layout is the module's flat-buffer codec: a fixed header, the
        side tables as JSON, then each numeric column 8-aligned.  ``buf``
        must be writable and at least :meth:`byte_size` bytes long.
        """
        self._codec_check()
        n = len(self.timestamps)
        meta = self._codec_meta()
        total = self.byte_size()
        mv = memoryview(buf)
        if len(mv) < total:
            raise ValueError(f"buffer too small: need {total} bytes, have {len(mv)}")
        flags = 0
        if self.media_codes is not None:
            flags |= _CODEC_FLAG_MEDIA
        if self.frame_ids is not None:
            flags |= _CODEC_FLAG_FRAMES
        _CODEC_HEADER.pack_into(mv, 0, _CODEC_MAGIC, _CODEC_VERSION, flags, n, len(meta))
        offset = _CODEC_HEADER.size
        mv[offset : offset + len(meta)] = meta
        offset += _pad8(len(meta))

        def put(values: np.ndarray, dtype: np.dtype) -> None:
            nonlocal offset
            dest = np.frombuffer(mv, dtype=dtype, count=n, offset=offset)
            dest[:] = values
            offset += _pad8(n * dtype.itemsize)

        for name, dtype in _CODEC_COLUMNS:
            put(getattr(self, name), dtype)
        if self.media_codes is not None:
            put(self.media_codes, _CODEC_MEDIA_DTYPE)
        if self.frame_ids is not None:
            put(self.frame_ids, _CODEC_FRAME_DTYPE)
        return offset

    @classmethod
    def read_from(cls, buf: memoryview) -> "PacketBlock":
        """Decode a block encoded by :meth:`write_into`, zero-copy.

        Every numeric column is an ``np.frombuffer`` *view* over ``buf`` --
        nothing is copied, which is the point of the shared-memory transport.
        The caller owns the buffer's lifetime: the returned block (and any
        state derived from its columns by reference) must not outlive it.
        Consumers that release the buffer back to a ring must finish with the
        block first (the engine's ``push_block`` copies what it keeps).
        """
        mv = memoryview(buf)
        magic, version, flags, n, meta_len = _CODEC_HEADER.unpack_from(mv, 0)
        if magic != _CODEC_MAGIC:
            raise ValueError(f"not a flat-encoded PacketBlock (magic {magic!r})")
        if version != _CODEC_VERSION:
            raise ValueError(f"unsupported PacketBlock codec version {version}")
        offset = _CODEC_HEADER.size
        meta = json.loads(bytes(mv[offset : offset + meta_len]))
        offset += _pad8(meta_len)

        def get(dtype: np.dtype) -> np.ndarray:
            nonlocal offset
            column = np.frombuffer(mv, dtype=dtype, count=n, offset=offset)
            offset += _pad8(n * dtype.itemsize)
            return column

        columns = {name: get(dtype) for name, dtype in _CODEC_COLUMNS}
        media_codes = get(_CODEC_MEDIA_DTYPE) if flags & _CODEC_FLAG_MEDIA else None
        frame_ids = get(_CODEC_FRAME_DTYPE) if flags & _CODEC_FLAG_FRAMES else None
        return cls(
            addresses=tuple(meta["addresses"]),
            flows=tuple(
                FlowKey(src=src, src_port=src_port, dst=dst, dst_port=dst_port, protocol=protocol)
                for src, src_port, dst, dst_port, protocol in meta["flows"]
            ),
            rtp=None,
            media_codes=media_codes,
            frame_ids=frame_ids,
            _packets=None,
            **columns,
        )

    # -- pickling (the cluster wire format) ------------------------------------

    def __getstate__(self) -> dict:
        """Arrays and side tables only: the packet-object cache never ships."""
        state = {name: getattr(self, name) for name in self.__slots__}
        state["_packets"] = None
        state["_meta_cache"] = None
        # Basic slices are views into the parent block's buffers; pickling a
        # view would serialize the whole base buffer.
        for name, value in state.items():
            if isinstance(value, np.ndarray) and value.base is not None:
                state[name] = value.copy()
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketBlock(n={len(self)}, flows={len(self.flows)}, "
            f"cached_packets={self._packets is not None})"
        )


def blocks_from_packets(
    packets: Iterable[Packet], chunk_size: int, keep_packets: bool = True
) -> Iterator[PacketBlock]:
    """Generic adapter: batch any packet iterable into ``PacketBlock`` chunks."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
    chunk: list[Packet] = []
    for packet in packets:
        chunk.append(packet)
        if len(chunk) >= chunk_size:
            yield PacketBlock.from_packets(chunk, keep_packets=keep_packets)
            chunk = []
    if chunk:
        yield PacketBlock.from_packets(chunk, keep_packets=keep_packets)
