"""Elastic sharding end-to-end: live migrations must not change the output.

The headline acceptance criterion of the rebalancing subsystem: a run with
live flow migrations -- forced (``ScheduledRebalancer``) or policy-driven
(``GreedyRebalancer``) -- emits estimates **bit-identical to and in the same
fan-in order as** the static-map ``ShardedQoEMonitor`` and the
single-process ``QoEMonitor``, for 2 and 4 workers, heuristic and trained,
over both transports.  Plus unit tests for the policy layer and the
mid-run telemetry / migration bookkeeping satellites.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro import (
    CollectorSink,
    IteratorSource,
    QoEMonitor,
    QoEPipeline,
    ShardedQoEMonitor,
)
from repro.cluster import (
    GreedyRebalancer,
    Migration,
    RebalancePolicy,
    ScheduledRebalancer,
    ShardLoad,
    shm_available,
)
from repro.cluster.fanin import flow_sort_key
from repro.cluster.router import FlowShardRouter
from repro.net.flows import FlowKey

#: The flows of the conftest ``many_flow_packets`` fixture; ``CANON`` is the
#: canonical (bidirectional) form the migration log records.
KEYS = [FlowKey("192.0.2.10", 3478, f"10.0.0.{i + 1}", 50000 + i) for i in range(4)]
CANON = [key.bidirectional()[0] for key in KEYS]

#: A second flow set whose static 2-shard map is a 3-vs-1 split (shards
#: [0, 0, 1, 0]) -- a genuine hot spot for the live greedy policy, which the
#: evenly split ``KEYS`` ([0, 0, 1, 1]) never produce.
SKEWED_KEYS = [FlowKey("192.0.2.10", 3478, f"10.0.0.{i}", 50000 + i) for i in range(1, 5)]

_spec = importlib.util.spec_from_file_location(
    "_cluster_conftest_rebalance", Path(__file__).resolve().parent / "conftest.py"
)
_cluster_conftest = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_cluster_conftest)


@pytest.fixture(scope="module")
def skewed_packets():
    return _cluster_conftest.interleave(
        *(
            _cluster_conftest.synthetic_flow(i, key.dst, key.dst_port)
            for i, key in enumerate(SKEWED_KEYS, start=1)
        )
    )

TRANSPORTS = [
    "block",
    pytest.param(
        "shm",
        marks=pytest.mark.skipif(
            not shm_available(),
            reason="multiprocessing.shared_memory unavailable on this platform",
        ),
    ),
]


def fan_in_order(items):
    return sorted(items, key=lambda item: (item.estimate.window_start, flow_sort_key(item.flow)))


def as_rows(items):
    return [(item.flow, item.estimate) for item in items]


def forced_schedule(n_workers):
    """Two real cuts (one away, one back home) plus one deliberate no-op."""
    router = FlowShardRouter(n_workers)
    home = router.shard_of_key(KEYS[0])
    away = (home + 1) % n_workers
    return [(1.5, KEYS[0], away), (3.0, KEYS[2], router.shard_of_key(KEYS[2])), (5.0, KEYS[0], home)]


def run_sharded(pipeline, packets, n_workers, **kwargs):
    sink = CollectorSink()
    monitor = ShardedQoEMonitor(
        pipeline, IteratorSource(iter(packets)), sinks=sink, n_workers=n_workers, **kwargs
    )
    report = monitor.run()
    return sink, report, monitor


@pytest.fixture(scope="module")
def heuristic_pipeline():
    return QoEPipeline.for_vca("teams")


@pytest.fixture(scope="module")
def single_expected(many_flow_packets):
    """Single-process reference output per mode, in fan-in contract order."""
    cache: dict[int, list] = {}

    def reference(pipeline):
        key = id(pipeline)
        if key not in cache:
            sink = CollectorSink()
            QoEMonitor(pipeline, IteratorSource(iter(many_flow_packets)), sinks=sink).run()
            cache[key] = as_rows(fan_in_order(sink.items))
        return cache[key]

    return reference


class TestForcedMigrationDeterminism:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_heuristic_identical_to_static_and_single(
        self, many_flow_packets, single_expected, heuristic_pipeline, n_workers, transport
    ):
        pipeline = heuristic_pipeline
        expected = single_expected(pipeline)
        static, _, _ = run_sharded(pipeline, many_flow_packets, n_workers, transport=transport)
        moved, report, monitor = run_sharded(
            pipeline,
            many_flow_packets,
            n_workers,
            transport=transport,
            rebalance=ScheduledRebalancer(forced_schedule(n_workers)),
        )
        # Bit-identical and in the same fan-in order, migrations and all.
        assert as_rows(moved.items) == as_rows(static.items) == expected
        assert report.n_flows == 4
        assert report.n_packets == len(many_flow_packets)
        # Two genuine cuts happened; the scheduled no-op was skipped.
        home = FlowShardRouter(n_workers).shard_of_key(KEYS[0])
        away = (home + 1) % n_workers
        assert [m["flow"] for m in monitor.migrations] == [CANON[0], CANON[0]]
        assert [m["epoch"] for m in monitor.migrations] == [1, 2]
        assert monitor.migrations[0]["src"] == home
        assert monitor.migrations[0]["dst"] == away
        assert monitor.migrations[1] == {
            "epoch": 2,
            "flow": CANON[0],
            "src": away,
            "dst": home,
            "latency_s": monitor.migrations[1]["latency_s"],
        }
        assert all(m["latency_s"] > 0.0 for m in monitor.migrations)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_trained_identical_to_static_and_single(
        self, many_flow_packets, single_expected, trained_pipeline, n_workers, transport
    ):
        expected = single_expected(trained_pipeline)
        assert all(estimate.source == "ml" for _, estimate in expected)
        static, _, _ = run_sharded(trained_pipeline, many_flow_packets, n_workers, transport=transport)
        moved, _, monitor = run_sharded(
            trained_pipeline,
            many_flow_packets,
            n_workers,
            transport=transport,
            rebalance=ScheduledRebalancer(forced_schedule(n_workers)),
        )
        assert as_rows(moved.items) == as_rows(static.items) == expected
        assert len(monitor.migrations) == 2

    def test_flow_count_survives_migration_chains(self, many_flow_packets):
        """The ownership ledger: each flow counted once, wherever it ends up.

        KEYS[0] leaves shard 0, comes home, and leaves again -- intermediate
        homes must not claim it, and the final count must still be 4.
        """
        schedule = [(1.0, KEYS[0], 1), (2.5, KEYS[0], 0), (4.0, KEYS[0], 1)]
        _, report, monitor = run_sharded(
            QoEPipeline.for_vca("teams"),
            many_flow_packets,
            2,
            rebalance=ScheduledRebalancer(schedule),
        )
        assert len(monitor.migrations) == 3
        assert report.n_flows == 4
        assert sum(stats["n_flows"] for stats in monitor.shard_stats) == 4


class TestLivePolicyDeterminism:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_greedy_rebalancing_identical_to_static(
        self, skewed_packets, heuristic_pipeline, transport
    ):
        pipeline = heuristic_pipeline
        single = CollectorSink()
        QoEMonitor(pipeline, IteratorSource(iter(skewed_packets)), sinks=single).run()
        expected = as_rows(fan_in_order(single.items))
        static, _, _ = run_sharded(pipeline, skewed_packets, 2, transport=transport)
        policy = GreedyRebalancer(interval_s=1.0, max_migrations=1, min_imbalance=1.1)
        moved, report, monitor = run_sharded(
            pipeline, skewed_packets, 2, transport=transport, rebalance=policy
        )
        # The 3-vs-1 static split really is imbalanced enough to trigger.
        assert len(monitor.migrations) >= 1
        assert as_rows(moved.items) == as_rows(static.items) == expected
        assert report.transport["rebalance"] == {"migrations": len(monitor.migrations)}

    def test_none_policy_preserves_static_map(self, many_flow_packets):
        _, report, monitor = run_sharded(QoEPipeline.for_vca("teams"), many_flow_packets, 2)
        assert monitor.rebalance is None
        assert monitor.migrations == []
        assert "rebalance" not in report.transport
        assert monitor.router._overrides == {}


class TestShardTelemetry:
    def test_shard_loads_populated_without_rebalancing(self, many_flow_packets):
        """Load telemetry rides every progress/est message unconditionally."""
        _, _, monitor = run_sharded(QoEPipeline.for_vca("teams"), many_flow_packets, 2)
        assert len(monitor.shard_loads) == 2
        for load in monitor.shard_loads:
            assert set(load) == {"live_flows", "buffered_packets", "open_windows"}
        # The final reading (taken before the flush) still sees live state.
        assert sum(load["live_flows"] for load in monitor.shard_loads) == 4

    def test_done_stats_carry_final_load(self, many_flow_packets):
        _, _, monitor = run_sharded(QoEPipeline.for_vca("teams"), many_flow_packets, 2)
        for stats in monitor.shard_stats:
            assert set(stats["load"]) == {"live_flows", "buffered_packets", "open_windows"}

    def test_idle_shard_reports_load_at_done(self, many_flow_packets):
        # With the pinned 4-shard map ([2, 0, 1, 1]), shard 3 receives no
        # flows at all -- its only load report is the one in its done stats.
        _, _, monitor = run_sharded(QoEPipeline.for_vca("teams"), many_flow_packets, 4)
        assert all(load is not None for load in monitor.shard_loads)
        assert monitor.shard_loads[3] == {
            "live_flows": 0,
            "buffered_packets": 0,
            "open_windows": 0,
        }


class TestPolicyUnits:
    def loads(self, packets_per_shard, flows_per_shard=None):
        result = []
        for shard_id, n in enumerate(packets_per_shard):
            flow_packets = {}
            if flows_per_shard is not None:
                flow_packets = flows_per_shard[shard_id]
            result.append(
                ShardLoad(shard_id=shard_id, interval_packets=n, flow_packets=flow_packets)
            )
        return result

    def test_base_policy_validates_knobs(self):
        with pytest.raises(ValueError, match="interval_s"):
            RebalancePolicy(interval_s=0.0)
        with pytest.raises(ValueError, match="max_migrations"):
            RebalancePolicy(max_migrations=0)
        with pytest.raises(ValueError, match="min_imbalance"):
            GreedyRebalancer(min_imbalance=0.5)
        with pytest.raises(NotImplementedError):
            RebalancePolicy().plan(0.0, [])

    def test_greedy_skips_balanced_shards(self):
        policy = GreedyRebalancer(min_imbalance=1.5)
        assert policy.plan(0.0, self.loads([100, 90])) == []
        assert policy.plan(0.0, self.loads([100])) == []

    def test_greedy_never_empties_the_source_shard(self):
        policy = GreedyRebalancer(max_migrations=8, min_imbalance=1.1)
        flows = [{KEYS[0]: 500, KEYS[1]: 400}, {}]
        plan = policy.plan(0.0, self.loads([900, 10], flows))
        # Two candidate flows, budget caps at one: the hotter flow moves.
        assert plan == [Migration(flow=KEYS[0], dst=1)]

    def test_greedy_skips_single_flow_hotspots(self):
        policy = GreedyRebalancer(min_imbalance=1.1)
        assert policy.plan(0.0, self.loads([900, 10], [{KEYS[0]: 900}, {}])) == []

    def test_greedy_moves_hottest_flows_first_with_deterministic_ties(self):
        policy = GreedyRebalancer(max_migrations=2, min_imbalance=1.1)
        flows = [{KEYS[2]: 300, KEYS[1]: 300, KEYS[0]: 200}, {}]
        plan = policy.plan(0.0, self.loads([800, 10], flows))
        # Equal heat resolves by flow sort order, so plans are reproducible.
        assert plan == [Migration(flow=KEYS[1], dst=1), Migration(flow=KEYS[2], dst=1)]

    def test_scheduled_fires_in_order_and_once(self):
        policy = ScheduledRebalancer([(2.0, KEYS[1], 1), (1.0, KEYS[0], 1)])
        assert policy.plan(0.5, []) == []
        assert policy.plan(1.2, []) == [Migration(flow=KEYS[0], dst=1)]
        assert policy.plan(5.0, []) == [Migration(flow=KEYS[1], dst=1)]
        assert policy.plan(9.0, []) == []

    def test_scheduled_catches_up_multiple_due_entries(self):
        policy = ScheduledRebalancer([(1.0, KEYS[0], 1), (2.0, KEYS[1], 0)])
        assert policy.plan(10.0, []) == [
            Migration(flow=KEYS[0], dst=1),
            Migration(flow=KEYS[1], dst=0),
        ]
