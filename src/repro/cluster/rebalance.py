"""Rebalancing policies for elastic sharding: *which* flow moves *where*.

The mechanism -- snapshotting a live flow on one shard and restoring it
push-identically on another (:mod:`repro.net.flowwire`, the
``migrate_out`` / ``migrate_in`` worker protocol) -- lives in the monitor
and workers.  This module is the *policy* layer: given periodic per-shard
load (live flows, buffered packets, open windows, plus the parent's own
per-flow packet counts from routing), decide which canonical flows to
re-home, under a migrations-per-interval budget.

``ShardedQoEMonitor(rebalance=None)`` -- the default -- never consults any
of this and preserves the static CRC-32 map exactly.  Policies are
deterministic functions of the observed load (ties broken by flow sort
order), so a rebalanced run is reproducible: same trace, same policy, same
migrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.flows import FlowKey

__all__ = [
    "Migration",
    "ShardLoad",
    "RebalancePolicy",
    "GreedyRebalancer",
    "ScheduledRebalancer",
    "summarize_migrations",
]


def summarize_migrations(migrations: list[dict]) -> dict:
    """Cut-latency summary of a run's executed migrations.

    Input is ``ShardedQoEMonitor.migrations`` (one ``{"epoch", "flow",
    "src", "dst", "latency_s"}`` dict per re-homing, in execution order);
    returns ``{}`` when none ran, otherwise the count plus
    total/mean/max stop-and-copy latency in seconds -- the
    ``MonitorReport.migration`` surface.
    """
    if not migrations:
        return {}
    latencies = [migration["latency_s"] for migration in migrations]
    total = sum(latencies)
    return {
        "count": len(latencies),
        "total_latency_s": total,
        "mean_latency_s": total / len(latencies),
        "max_latency_s": max(latencies),
    }


@dataclass(frozen=True)
class Migration:
    """One planned re-homing: move canonical ``flow`` to shard ``dst``."""

    flow: FlowKey
    dst: int


@dataclass
class ShardLoad:
    """One shard's load as seen at a rebalance tick.

    ``live_flows`` / ``buffered_packets`` / ``open_windows`` come from the
    worker's own telemetry (trailing load field on ``progress`` / ``est``
    messages); ``interval_packets`` and ``flow_packets`` are the parent's
    routing-side counts since the previous tick -- per *canonical* flow, so
    a policy moves whole bidirectional calls.
    """

    shard_id: int
    live_flows: int = 0
    buffered_packets: int = 0
    open_windows: int = 0
    interval_packets: int = 0
    flow_packets: dict = field(default_factory=dict)


class RebalancePolicy:
    """Base class for rebalancing policies.

    ``interval_s`` is measured in *stream time* (packet timestamps), not
    wall time, so planning is reproducible across machines and replays.
    ``max_migrations`` caps how many flows one tick may move; migrations
    are synchronous stop-and-copy cuts, so the budget bounds the stall a
    tick can add.
    """

    def __init__(self, interval_s: float = 2.0, max_migrations: int = 2) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s!r}")
        if max_migrations < 1:
            raise ValueError(f"max_migrations must be >= 1, got {max_migrations!r}")
        self.interval_s = interval_s
        self.max_migrations = max_migrations

    def plan(self, now: float, loads: list[ShardLoad]) -> list[Migration]:
        """Migrations to perform at stream time ``now`` (may be empty).

        The driver truncates the plan to ``max_migrations`` regardless of
        what a policy returns.
        """
        raise NotImplementedError


class GreedyRebalancer(RebalancePolicy):
    """Move the hottest flows from the hottest shard to the coldest.

    Heat is the interval packet count (the parent's routing-side view --
    available even before the first worker telemetry arrives).  A move is
    planned only when the hottest shard carries more than ``min_imbalance``
    times the coldest's packets *and* has more than one live flow (moving
    the only flow of a shard just relocates the hot spot).  Among the
    hottest shard's flows the largest by interval packets moves first, ties
    broken by flow key so planning is deterministic.
    """

    def __init__(
        self,
        interval_s: float = 2.0,
        max_migrations: int = 2,
        min_imbalance: float = 1.5,
    ) -> None:
        super().__init__(interval_s=interval_s, max_migrations=max_migrations)
        if min_imbalance < 1.0:
            raise ValueError(f"min_imbalance must be >= 1.0, got {min_imbalance!r}")
        self.min_imbalance = min_imbalance

    def plan(self, now: float, loads: list[ShardLoad]) -> list[Migration]:
        if len(loads) < 2:
            return []
        hottest = max(loads, key=lambda load: (load.interval_packets, -load.shard_id))
        coldest = min(loads, key=lambda load: (load.interval_packets, load.shard_id))
        if hottest.shard_id == coldest.shard_id:
            return []
        if hottest.interval_packets <= self.min_imbalance * max(coldest.interval_packets, 1):
            return []
        if len(hottest.flow_packets) < 2:
            return []
        # Hottest flows first; never empty the source shard completely.
        candidates = sorted(
            hottest.flow_packets.items(),
            key=lambda entry: (-entry[1], _flow_order_key(entry[0])),
        )
        budget = min(self.max_migrations, len(candidates) - 1)
        return [Migration(flow=flow, dst=coldest.shard_id) for flow, _ in candidates[:budget]]


class ScheduledRebalancer(RebalancePolicy):
    """Replay a fixed migration schedule: ``[(time_s, flow, dst), ...]``.

    The deterministic-by-construction policy used by the forced-migration
    tests and CI smoke: each entry fires at the first rebalance tick whose
    stream time reaches ``time_s``.  ``interval_s`` defaults small so
    scheduled cuts land close to their nominal times.
    """

    def __init__(self, schedule, interval_s: float = 0.5, max_migrations: int = 64) -> None:
        super().__init__(interval_s=interval_s, max_migrations=max_migrations)
        self._schedule = sorted(
            ((float(t), flow, int(dst)) for t, flow, dst in schedule),
            key=lambda entry: (entry[0], _flow_order_key(entry[1]), entry[2]),
        )
        self._next = 0

    def plan(self, now: float, loads: list[ShardLoad]) -> list[Migration]:
        planned: list[Migration] = []
        while self._next < len(self._schedule) and self._schedule[self._next][0] <= now:
            _, flow, dst = self._schedule[self._next]
            planned.append(Migration(flow=flow, dst=dst))
            self._next += 1
        return planned


def _flow_order_key(flow: FlowKey) -> tuple:
    return (flow.src, flow.src_port, flow.dst, flow.dst_port, flow.protocol)
