"""Emulated bottleneck link.

Models the path between the VCA sender and the measurement point as:

1. a token-bucket rate limiter with a finite drop-tail queue (the bottleneck),
2. Bernoulli random loss,
3. constant one-way propagation delay plus truncated-Gaussian jitter.

Because jitter is applied per packet after the FIFO bottleneck, sufficiently
large jitter reorders packets at the receiver -- exactly the effect the paper
identifies as the main failure mode of the IP/UDP Heuristic (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.net.packet import Packet
from repro.netem.conditions import ConditionSchedule, NetworkCondition

__all__ = ["EmulatedLink", "LinkReport"]


@dataclass(frozen=True)
class LinkReport:
    """What happened to a batch of packets that crossed the link."""

    sent: int
    delivered: int
    dropped_loss: int
    dropped_queue: int
    mean_delay_ms: float
    max_queue_delay_ms: float

    @property
    def loss_fraction(self) -> float:
        if self.sent == 0:
            return 0.0
        return (self.dropped_loss + self.dropped_queue) / self.sent


class EmulatedLink:
    """Stateful one-way link driven by a :class:`ConditionSchedule`.

    The link keeps its queue backlog across calls to :meth:`transmit`, so a
    burst in one interval can spill queueing delay into the next, as a real
    bottleneck would.
    """

    def __init__(
        self,
        schedule: ConditionSchedule,
        max_queue_ms: float = 300.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if max_queue_ms <= 0:
            raise ValueError("max_queue_ms must be positive")
        self.schedule = schedule
        self.max_queue_ms = max_queue_ms
        self.rng = rng if rng is not None else np.random.default_rng()
        # Time at which the bottleneck becomes free to serve the next packet.
        self._link_free_at = 0.0

    def reset(self) -> None:
        """Forget queue state (used between independent calls)."""
        self._link_free_at = 0.0

    def transmit(self, packets: list[Packet]) -> tuple[list[Packet], LinkReport]:
        """Carry ``packets`` (ordered by departure time) across the link.

        Returns the delivered packets with their arrival timestamps (sorted by
        arrival) together with a :class:`LinkReport`.  Packet objects are not
        mutated; delivered packets are timestamp-shifted copies.
        """
        delivered: list[Packet] = []
        dropped_loss = 0
        dropped_queue = 0
        delays: list[float] = []
        max_queue_delay = 0.0

        for packet in sorted(packets, key=lambda p: p.timestamp):
            condition = self.schedule.at(packet.timestamp)

            # Random (Bernoulli) loss upstream of the bottleneck.
            if condition.loss_rate > 0 and self.rng.random() < condition.loss_rate:
                dropped_loss += 1
                continue

            service_time = packet.payload_size / condition.throughput_bytes_per_second
            start_service = max(packet.timestamp, self._link_free_at)
            queue_delay = start_service - packet.timestamp
            if queue_delay * 1000.0 > self.max_queue_ms:
                dropped_queue += 1
                continue
            finish_service = start_service + service_time
            self._link_free_at = finish_service

            propagation = condition.delay_ms / 1000.0
            jitter = 0.0
            if condition.jitter_ms > 0:
                jitter = abs(self.rng.normal(0.0, condition.jitter_ms / 1000.0))
            arrival = finish_service + propagation + jitter

            total_delay = arrival - packet.timestamp
            delays.append(total_delay)
            max_queue_delay = max(max_queue_delay, queue_delay)
            delivered.append(replace(packet, timestamp=arrival))

        delivered.sort(key=lambda p: p.timestamp)
        report = LinkReport(
            sent=len(packets),
            delivered=len(delivered),
            dropped_loss=dropped_loss,
            dropped_queue=dropped_queue,
            mean_delay_ms=float(np.mean(delays) * 1000.0) if delays else 0.0,
            max_queue_delay_ms=max_queue_delay * 1000.0,
        )
        return delivered, report

    def condition_at(self, time: float) -> NetworkCondition:
        return self.schedule.at(time)
