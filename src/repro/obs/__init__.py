"""repro.obs -- the unified telemetry plane (PR 8).

One :class:`~repro.obs.registry.MetricsRegistry` per process (counters,
gauges, fixed-bucket histograms), stage-timing spans threaded through the
whole data plane behind a frozen :class:`~repro.obs.config.ObsConfig`
(disabled by default: one falsy branch per tick, nothing allocated), and
three export surfaces:

* ``monitor.metrics()`` / ``MonitorReport.metrics`` -- the JSON snapshot;
* :func:`~repro.obs.render.render_prometheus` -- the scrape format;
* :class:`~repro.obs.logsink.MetricsLogSink` -- periodic JSONL emission
  driven by stream time.

In a sharded run each worker owns a registry and ships **deltas** on the
messages it already sends (``progress``/``est``/``done``); the parent
merges them into one fleet registry, so a single scrape covers the whole
deployment.  See the README's "Observability" section for the metric name
catalogue.
"""

from repro.obs.config import DEFAULT_LATENCY_BUCKETS, ObsConfig
from repro.obs.registry import MetricsRegistry, ingest_transport_stats
from repro.obs.render import parse_prometheus, render_prometheus
from repro.obs.logsink import MetricsLogSink

__all__ = [
    "ObsConfig",
    "MetricsRegistry",
    "MetricsLogSink",
    "render_prometheus",
    "parse_prometheus",
    "ingest_transport_stats",
    "DEFAULT_LATENCY_BUCKETS",
]
