"""Figure 10a-c and Table A.3: estimation errors on the real-world dataset.

Paper shape: overall errors are lower than in-lab (conditions are more
stable); IP/UDP ML stays within a small gap of RTP ML; the IP/UDP Heuristic
remains the weakest for frame rate; resolution accuracy stays high for Meet
and Teams.
"""

from benchmarks.conftest import N_ESTIMATORS, save_artifact
from repro.analysis.reporting import format_confusion_matrix, format_method_comparison
from repro.core.evaluation import compare_methods, resolution_report


def test_fig10_real_world_errors(benchmark, real_world_datasets):
    def run():
        results = {}
        for vca, dataset in real_world_datasets.items():
            for metric in ("frame_rate", "bitrate", "frame_jitter"):
                results[(vca, metric)] = compare_methods(dataset, metric, n_estimators=N_ESTIMATORS)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = [
        format_method_comparison(
            per_vca, metric, title=f"Figure 10 - {metric} errors ({vca}, real-world)"
        )
        for (vca, metric), per_vca in sorted(results.items())
    ]
    save_artifact("fig10_realworld_errors", "\n\n".join(sections))

    for vca in real_world_datasets:
        frame_rate = results[(vca, "frame_rate")]
        assert frame_rate["ipudp_ml"].summary.mae <= frame_rate["ipudp_heuristic"].summary.mae, vca
        assert abs(frame_rate["ipudp_ml"].summary.mae - frame_rate["rtp_ml"].summary.mae) < 3.5, vca
        bitrate = results[(vca, "bitrate")]
        assert bitrate["ipudp_ml"].summary.mrae < 0.5, vca


def test_taba3_real_world_teams_resolution(benchmark, real_world_datasets):
    report = benchmark.pedantic(
        lambda: resolution_report(real_world_datasets["teams"], "ipudp_ml", n_estimators=N_ESTIMATORS),
        rounds=1,
        iterations=1,
    )
    text = format_confusion_matrix(
        report.confusion,
        report.labels,
        title=f"Table A.3 - Teams resolution confusion (IP/UDP ML, real-world), accuracy={report.accuracy*100:.2f}%",
    )
    save_artifact("taba3_realworld_resolution", text)
    assert report.accuracy > 0.5
