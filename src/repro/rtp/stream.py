"""RTP stream bookkeeping.

Tracks per-SSRC sequence number and timestamp spaces, observed reordering and
loss, which the RTP ML features (out-of-order sequence numbers, RTP lag,
unique timestamps) are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.packet import MediaType, Packet
from repro.rtp.header import sequence_distance

__all__ = ["RTPStream", "StreamRegistry"]


@dataclass
class RTPStream:
    """Running statistics for a single RTP stream (one SSRC)."""

    ssrc: int
    payload_type: int
    media_type: MediaType | None = None
    packet_count: int = 0
    byte_count: int = 0
    first_timestamp: int | None = None
    first_arrival: float | None = None
    last_sequence: int | None = None
    out_of_order: int = 0
    sequence_gaps: int = 0
    unique_timestamps: set[int] = field(default_factory=set)
    marker_count: int = 0

    def update(self, packet: Packet) -> None:
        """Fold one packet into the stream statistics."""
        if packet.rtp is None:
            raise ValueError("RTPStream.update requires a packet with an RTP header")
        rtp = packet.rtp
        if rtp.ssrc != self.ssrc:
            raise ValueError(f"packet SSRC {rtp.ssrc} does not match stream SSRC {self.ssrc}")
        self.packet_count += 1
        self.byte_count += packet.payload_size
        self.unique_timestamps.add(rtp.timestamp)
        if rtp.marker:
            self.marker_count += 1
        if self.first_timestamp is None:
            self.first_timestamp = rtp.timestamp
            self.first_arrival = packet.timestamp
        if self.last_sequence is not None:
            distance = sequence_distance(self.last_sequence, rtp.sequence_number)
            if distance <= 0:
                self.out_of_order += 1
            elif distance > 1:
                self.sequence_gaps += distance - 1
        if self.last_sequence is None or sequence_distance(self.last_sequence, rtp.sequence_number) > 0:
            self.last_sequence = rtp.sequence_number


class StreamRegistry:
    """Discover and track all RTP streams (SSRCs) present in a trace."""

    def __init__(self) -> None:
        self._streams: dict[int, RTPStream] = {}

    def observe(self, packet: Packet) -> RTPStream | None:
        """Update the registry with one packet; returns the stream, or ``None``
        if the packet carries no RTP header."""
        if packet.rtp is None:
            return None
        ssrc = packet.rtp.ssrc
        stream = self._streams.get(ssrc)
        if stream is None:
            stream = RTPStream(
                ssrc=ssrc,
                payload_type=packet.rtp.payload_type,
                media_type=packet.media_type,
            )
            self._streams[ssrc] = stream
        stream.update(packet)
        return stream

    def observe_all(self, packets) -> "StreamRegistry":
        for packet in packets:
            self.observe(packet)
        return self

    @property
    def streams(self) -> list[RTPStream]:
        return list(self._streams.values())

    def by_payload_type(self, payload_type: int) -> list[RTPStream]:
        return [s for s in self._streams.values() if s.payload_type == payload_type]

    def by_media_type(self, media_type: MediaType) -> list[RTPStream]:
        return [s for s in self._streams.values() if s.media_type is media_type]

    def __len__(self) -> int:
        return len(self._streams)

    def __contains__(self, ssrc: int) -> bool:
        return ssrc in self._streams
