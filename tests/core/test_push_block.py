"""Equivalence pins for the columnar engine path.

The block-path contract: feeding a capture through
``StreamingQoEPipeline.push_block`` -- any chunking, with or without the
in-process packet cache -- emits **exactly** what per-packet ``push`` emits:
same windows, bit-identical values, same emission order.  Pinned here for
the heuristic and trained estimators, demux and single-flow modes, sorted
and locally-disordered input, and through the QoEMonitor block driver.
"""

from __future__ import annotations

import importlib.util
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro import CollectorSink, IteratorSource, QoEMonitor, QoEPipeline, TraceSource
from repro.core.streaming import StreamingQoEPipeline, window_index, window_indices
from repro.net.block import blocks_from_packets
from repro.net.trace import PacketTrace

# The synthetic-flow / trained-pipeline helpers live in the cluster suite's
# conftest; load it under a private name (plain ``import conftest`` would
# collide with the root tests/conftest.py).
_spec = importlib.util.spec_from_file_location(
    "_cluster_conftest", Path(__file__).resolve().parents[1] / "cluster" / "conftest.py"
)
_cluster_conftest = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_cluster_conftest)
interleave = _cluster_conftest.interleave
make_trained_pipeline = _cluster_conftest.make_trained_pipeline
synthetic_flow = _cluster_conftest.synthetic_flow


@pytest.fixture(scope="module")
def vantage_packets():
    return interleave(
        *(synthetic_flow(seed, f"10.0.0.{seed + 1}", 50000 + seed) for seed in range(4))
    )


@pytest.fixture(scope="module")
def trained_pipeline():
    return make_trained_pipeline()


def per_packet_run(pipeline, packets, **engine_kwargs):
    engine = StreamingQoEPipeline(pipeline, **engine_kwargs)
    emitted = [item for packet in packets for item in engine.push(packet)]
    emitted.extend(engine.flush())
    return emitted


def block_run(pipeline, packets, chunk_size, wire=False, **engine_kwargs):
    engine = StreamingQoEPipeline(pipeline, **engine_kwargs)
    emitted = []
    for block in blocks_from_packets(packets, chunk_size):
        if wire:
            block = pickle.loads(pickle.dumps(block))
        emitted.extend(engine.push_block(block))
    emitted.extend(engine.flush())
    return emitted


class TestWindowIndices:
    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(0)
        timestamps = np.sort(rng.uniform(0.0, 50.0, size=4000))
        timestamps = np.concatenate((timestamps, np.arange(0.0, 50.0, 0.5)))  # exact boundaries
        for start, window_s in ((0.0, 1.0), (0.25, 0.3), (-3.0, 0.7)):
            expected = [window_index(float(t), start, window_s) for t in timestamps]
            np.testing.assert_array_equal(
                window_indices(timestamps, start, window_s), expected
            )


class TestPushBlockEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 7, 256, 100_000])
    def test_heuristic_bit_identical_any_chunking(self, vantage_packets, chunk_size):
        pipeline = QoEPipeline.for_vca("teams")
        assert block_run(pipeline, vantage_packets, chunk_size) == per_packet_run(
            pipeline, vantage_packets
        )

    @pytest.mark.parametrize("chunk_size", [1, 7, 256, 100_000])
    def test_trained_bit_identical_any_chunking(self, vantage_packets, trained_pipeline, chunk_size):
        expected = per_packet_run(trained_pipeline, vantage_packets)
        assert all(item.estimate.source == "ml" for item in expected)
        assert block_run(trained_pipeline, vantage_packets, chunk_size) == expected

    def test_wire_blocks_without_packet_cache(self, vantage_packets, trained_pipeline):
        for pipeline in (QoEPipeline.for_vca("teams"), trained_pipeline):
            assert block_run(pipeline, vantage_packets, 256, wire=True) == per_packet_run(
                pipeline, vantage_packets
            )

    def test_locally_disordered_input_falls_back_identically(self, trained_pipeline):
        packets = synthetic_flow(9, "10.0.0.9", 50009, duration_s=6.0)
        disordered = list(packets)
        for i in range(0, len(disordered) - 1, 5):
            disordered[i], disordered[i + 1] = disordered[i + 1], disordered[i]
        for pipeline in (QoEPipeline.for_vca("teams"), trained_pipeline):
            assert block_run(pipeline, disordered, 64) == per_packet_run(pipeline, disordered)

    def test_backdated_block_with_zero_reorder_depth(self, trained_pipeline):
        """A later block that backdates the watermark must drop, not rewind.

        With reorder_depth=0 the pending buffer is always empty, so the
        sorted fast path cannot rely on it to detect backdating -- the
        watermark guard has to (regression test: the stale run used to be
        accounted, rewinding the open window).
        """
        import numpy as np

        from repro.net.block import PacketBlock
        from repro.net.packet import IPv4Header, Packet, UDPHeader

        ip = IPv4Header(src="192.0.2.10", dst="10.0.0.1")
        udp = UDPHeader(src_port=3478, dst_port=50000)

        def pkt(ts):
            return Packet(timestamp=ts, ip=ip, udp=udp, payload_size=900)

        feed = [[pkt(10.0), pkt(10.1)], [pkt(5.0), pkt(5.1), pkt(6.0)], [pkt(11.0)]]
        for pipeline in (QoEPipeline.for_vca("teams"), trained_pipeline):
            reference = per_packet_run(pipeline, [p for chunk in feed for p in chunk],
                                       reorder_depth=0)
            engine = StreamingQoEPipeline(pipeline, reorder_depth=0)
            emitted = []
            for chunk in feed:
                emitted.extend(engine.push_block(PacketBlock.from_packets(chunk)))
            emitted.extend(engine.flush())
            assert emitted == reference
            assert np.all([e.estimate.window_start >= 10.0 for e in emitted])

    def test_single_flow_mode(self, trained_pipeline):
        packets = synthetic_flow(2, "10.0.0.2", 50002, duration_s=6.0)
        for pipeline in (QoEPipeline.for_vca("teams"), trained_pipeline):
            assert block_run(pipeline, packets, 128, demux_flows=False) == per_packet_run(
                pipeline, packets, demux_flows=False
            )

    def test_mixing_push_and_push_block(self, vantage_packets, trained_pipeline):
        """A stream fed alternately by blocks and single packets stays exact."""
        for pipeline in (QoEPipeline.for_vca("teams"), trained_pipeline):
            engine = StreamingQoEPipeline(pipeline)
            emitted = []
            cursor = 0
            for block in blocks_from_packets(vantage_packets[: len(vantage_packets) // 2], 200):
                emitted.extend(engine.push_block(block))
                cursor += len(block)
            for packet in vantage_packets[cursor:]:
                emitted.extend(engine.push(packet))
            emitted.extend(engine.flush())
            assert emitted == per_packet_run(pipeline, vantage_packets)

    def test_heuristic_block_path_constructs_zero_packet_objects(self, vantage_packets, monkeypatch):
        """Sorted in-flow runs feed the vectorized assembler as raw columns:
        the heuristic block path must never materialize a ``Packet``."""
        import repro.net.packet as packet_mod

        pipeline = QoEPipeline.for_vca("teams")
        engine = StreamingQoEPipeline(pipeline)
        # Wire-style blocks (no in-process packet cache), built up front so
        # only the engine runs under the instrumented constructor.
        blocks = [
            pickle.loads(pickle.dumps(block))
            for block in blocks_from_packets(vantage_packets, 256)
        ]
        constructed = 0
        real_init = packet_mod.Packet.__init__

        def counting_init(self, *args, **kwargs):
            nonlocal constructed
            constructed += 1
            real_init(self, *args, **kwargs)

        monkeypatch.setattr(packet_mod.Packet, "__init__", counting_init)
        emitted = []
        for block in blocks:
            emitted.extend(engine.push_block(block))
        emitted.extend(engine.flush())
        assert constructed == 0
        assert emitted  # the run actually produced estimates

    def test_push_block_after_flush_raises(self, vantage_packets):
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        engine.flush()
        with pytest.raises(RuntimeError, match="flushed"):
            engine.push_block(next(blocks_from_packets(vantage_packets, 16)))

    def test_evict_idle_between_blocks_matches_per_packet_eviction_values(self, vantage_packets):
        """Eviction between blocks closes the same windows (per flow/window)."""
        pipeline = QoEPipeline.for_vca("teams")
        engine = StreamingQoEPipeline(pipeline)
        emitted = []
        for block in blocks_from_packets(vantage_packets, 512):
            emitted.extend(engine.push_block(block))
            emitted.extend(engine.evict_idle(2.0))
        emitted.extend(engine.flush())
        reference = per_packet_run(pipeline, vantage_packets)
        key = lambda item: (item.estimate.window_start, str(item.flow))  # noqa: E731
        assert sorted(emitted, key=key) == sorted(reference, key=key)


class TestMonitorBlockDriver:
    def test_block_monitor_identical_to_per_packet_monitor(self, vantage_packets, trained_pipeline):
        for pipeline in (QoEPipeline.for_vca("teams"), trained_pipeline):
            reference = CollectorSink()
            QoEMonitor(pipeline, IteratorSource(iter(vantage_packets)), sinks=reference).run()
            block_sink = CollectorSink()
            report = QoEMonitor(
                pipeline,
                IteratorSource(iter(vantage_packets)),
                sinks=block_sink,
                block_size=256,
            ).run()
            assert block_sink.items == reference.items  # values AND order
            assert report.n_packets == len(vantage_packets)
            assert report.n_flows == 4

    def test_trace_source_native_blocks(self, vantage_packets):
        pipeline = QoEPipeline.for_vca("teams")
        reference = CollectorSink()
        QoEMonitor(pipeline, TraceSource(PacketTrace(vantage_packets)), sinks=reference).run()
        sink = CollectorSink()
        QoEMonitor(
            pipeline, TraceSource(PacketTrace(vantage_packets)), sinks=sink, block_size=128
        ).run()
        assert sink.items == reference.items

    def test_block_monitor_with_idle_eviction_runs(self, vantage_packets):
        pipeline = QoEPipeline.for_vca("teams")
        sink = CollectorSink()
        report = QoEMonitor(
            pipeline,
            IteratorSource(iter(vantage_packets)),
            sinks=sink,
            config=pipeline.config.replace(idle_timeout_s=2.0),
            block_size=64,
        ).run()
        assert report.n_estimates == len(sink.items)
        per_flow: dict = {}
        for item in sink.items:
            per_flow.setdefault(item.flow, []).append(item.estimate.window_start)
        for starts in per_flow.values():
            assert len(starts) == len(set(starts))  # no duplicate windows

    def test_rejects_bad_block_size(self, vantage_packets):
        with pytest.raises(ValueError, match="block_size"):
            QoEMonitor(
                QoEPipeline.for_vca("teams"),
                IteratorSource(iter(vantage_packets)),
                block_size=0,
            )


class TestPcapBlockPath:
    def test_pcap_native_blocks_feed_the_engine_identically(self, tmp_path, vantage_packets):
        from repro.net.pcap import write_pcap
        from repro.sources.base import PcapSource, iter_blocks

        path = tmp_path / "vantage.pcap"
        write_pcap(path, vantage_packets)
        pipeline = QoEPipeline.for_vca("teams")
        reference = CollectorSink()
        QoEMonitor(pipeline, PcapSource(path), sinks=reference).run()

        engine = StreamingQoEPipeline(pipeline)
        emitted = []
        for block in iter_blocks(PcapSource(path), 200):
            assert not block.has_packet_cache  # decoded straight into arrays
            emitted.extend(engine.push_block(block))
        emitted.extend(engine.flush())
        assert [(item.flow, item.estimate) for item in emitted] == [
            (item.flow, item.estimate) for item in reference.items
        ]


class TestChunkEvictionInteraction:
    """push_chunk ticks interleaved with evict_idle sweeps (the worker loop).

    An eviction between ticks must neither lose a window that was deferred
    into a tick nor re-emit one that already closed: every (flow, window)
    appears exactly once, with exactly the estimate an eviction-free run
    produces (flows that die and never resume lose nothing).
    """

    def _feed(self, pipeline, packets, chunk_size, idle_s):
        engine = StreamingQoEPipeline(pipeline)
        emitted = []
        evicted_flows = set()
        for start in range(0, len(packets), chunk_size):
            emitted.extend(engine.push_chunk(packets[start : start + chunk_size]))
            swept = engine.evict_idle(idle_s)
            evicted_flows.update(item.flow for item in swept)
            emitted.extend(swept)
        emitted.extend(engine.flush())
        return emitted, evicted_flows

    @pytest.mark.parametrize("trained", [False, True])
    def test_no_lost_or_duplicated_estimates(self, trained_pipeline, trained):
        long_lived = synthetic_flow(5, "10.0.0.5", 50005, duration_s=24.0)
        short = synthetic_flow(6, "10.0.0.6", 50006, duration_s=3.0)
        packets = interleave(long_lived, short)
        pipeline = trained_pipeline if trained else QoEPipeline.for_vca("teams")

        emitted, evicted_flows = self._feed(pipeline, packets, chunk_size=256, idle_s=5.0)
        assert evicted_flows, "the short flow should have been idle-evicted"

        seen = {}
        for item in emitted:
            window = (item.flow, item.estimate.window_start)
            assert window not in seen, f"duplicate estimate for {window}"
            seen[window] = item.estimate

        reference = per_packet_run(pipeline, packets)
        expected = {
            (item.flow, item.estimate.window_start): item.estimate for item in reference
        }
        assert seen == expected  # nothing lost, nothing altered, bit-identical

    def test_eviction_sweep_every_tick_with_tiny_chunks(self, trained_pipeline):
        """Stress the interaction: a sweep after every 16-packet tick."""
        long_lived = synthetic_flow(7, "10.0.0.7", 50007, duration_s=12.0)
        short = synthetic_flow(8, "10.0.0.8", 50008, duration_s=2.0)
        packets = interleave(long_lived, short)
        emitted, _ = self._feed(trained_pipeline, packets, chunk_size=16, idle_s=3.0)
        reference = per_packet_run(trained_pipeline, packets)
        key = lambda item: (item.estimate.window_start, str(item.flow))  # noqa: E731
        assert sorted(emitted, key=key) == sorted(reference, key=key)
