"""Unit tests for Algorithm 1 (frame assembly) and the frame-size analyses."""

import numpy as np
import pytest

from repro.core.frame_assembly import (
    FrameAssembler,
    assemble_frames,
    inter_frame_size_differences,
    intra_frame_size_differences,
)
from repro.net.packet import IPv4Header, MediaType, Packet, UDPHeader


def make_packet(timestamp, size, frame_id=None):
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src="1.1.1.1", dst="2.2.2.2"),
        udp=UDPHeader(src_port=1, dst_port=2),
        payload_size=size,
        media_type=MediaType.VIDEO,
        frame_id=frame_id,
    )


class TestFrameAssembler:
    def test_equal_sized_packets_form_one_frame(self):
        packets = [make_packet(0.001 * i, 1000) for i in range(5)]
        frames = assemble_frames(packets, delta_size=2, lookback=2)
        assert len(frames) == 1
        assert frames[0].n_packets == 5

    def test_size_change_starts_new_frame(self):
        packets = [make_packet(0.001, 1000), make_packet(0.002, 1000), make_packet(0.034, 950), make_packet(0.035, 950)]
        frames = assemble_frames(packets, delta_size=2, lookback=2)
        assert len(frames) == 2
        assert [f.n_packets for f in frames] == [2, 2]

    def test_every_packet_assigned_exactly_once(self):
        rng = np.random.default_rng(0)
        packets = [make_packet(0.001 * i, int(rng.integers(500, 1200))) for i in range(200)]
        frames = assemble_frames(packets, delta_size=2, lookback=3)
        assert sum(f.n_packets for f in frames) == 200

    def test_within_threshold_difference_groups_together(self):
        packets = [make_packet(0.001, 1000), make_packet(0.002, 1002), make_packet(0.003, 998)]
        # With lookback 2 the third packet (998) is 4 bytes away from the most
        # recent packet (1002) but matches the older 1000-byte packet, so all
        # three are grouped into a single frame.
        assert len(assemble_frames(packets, delta_size=2, lookback=2)) == 1
        # With lookback 1 it can only compare against 1002 and opens a new frame.
        assert len(assemble_frames(packets, delta_size=2, lookback=1)) == 2

    def test_lookback_recovers_reordered_packet(self):
        # Frame A: 1000,1000 ; frame B: 900 ; then a late packet of frame A (1000).
        packets = [
            make_packet(0.001, 1000),
            make_packet(0.002, 1000),
            make_packet(0.034, 900),
            make_packet(0.035, 1000),
        ]
        with_lookback = assemble_frames(packets, delta_size=2, lookback=2)
        without_lookback = assemble_frames(packets, delta_size=2, lookback=1)
        # With lookback 2 the late packet rejoins frame A (2 frames total);
        # with lookback 1 it opens a third frame.
        assert len(with_lookback) == 2
        assert len(without_lookback) == 3

    def test_frames_ordered_and_attributes(self):
        packets = [make_packet(0.01, 1000, frame_id=1), make_packet(0.05, 900, frame_id=2)]
        frames = assemble_frames(packets, delta_size=2, lookback=1)
        assert frames[0].start_time == 0.01
        assert frames[0].end_time == 0.01
        assert frames[0].raw_size_bytes == 1000
        assert frames[0].size_bytes == 1000 - 12
        assert frames[0].true_frame_ids == {1}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FrameAssembler(delta_size=-1.0)
        with pytest.raises(ValueError):
            FrameAssembler(lookback=0)

    def test_empty_input(self):
        assert assemble_frames([]) == []

    def test_assembly_on_simulated_call_is_close_to_true_frame_count(self, webex_call):
        """Under clean conditions the heuristic frame count should be within
        ~20% of the true number of frames (Webex fragments most cleanly)."""
        from repro.core.heuristic import IPUDPHeuristic
        from repro.webrtc.profiles import get_profile

        heuristic = IPUDPHeuristic.for_profile(get_profile("webex"))
        frames = heuristic.assemble(webex_call.trace)
        true_frames = {p.frame_id for p in webex_call.trace if p.frame_id is not None}
        assert abs(len(frames) - len(true_frames)) / len(true_frames) < 0.25


class TestFrameSizeDifferences:
    def test_intra_frame_differences_small_for_clean_call(self, teams_call):
        diffs = intra_frame_size_differences(teams_call.trace)
        assert len(diffs) > 100
        # The vast majority of frames fragment into near-equal packets (Fig. 2).
        assert np.mean(diffs <= 2.0) > 0.9

    def test_inter_frame_differences_usually_larger(self, teams_call):
        inter = inter_frame_size_differences(teams_call.trace)
        assert len(inter) > 100
        assert np.mean(inter >= 2.0) > 0.9

    def test_empty_trace(self):
        from repro.net.trace import PacketTrace

        assert len(intra_frame_size_differences(PacketTrace([]))) == 0
        assert len(inter_frame_size_differences(PacketTrace([]))) == 0
