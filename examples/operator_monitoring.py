"""Operator workflow: train in the lab, save the model, deploy monitors.

This mirrors how a network operator would deploy the paper's system with the
composable Source -> Engine -> Sink API:

1. collect labelled calls in a controlled lab (traces + webrtc-internals logs);
2. train one model per VCA and **save it to disk** (versioned JSON);
3. at every production site, ``QoEMonitor.from_model`` loads the model --
   no retraining, bit-identical predictions -- points it at a pcap capture
   (IP/UDP headers only, RTP stripped) and streams per-second estimates into
   sinks: a JSONL file for offline analysis plus a rolling per-flow summary
   for alerting.

Run with:  python examples/operator_monitoring.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import (
    ConditionSchedule,
    JSONLinesSink,
    LabDatasetConfig,
    NetworkCondition,
    PacketTrace,
    PcapSource,
    QoEMonitor,
    QoEPipeline,
    SessionConfig,
    SummarySink,
    build_lab_dataset,
    simulate_call,
)

FPS_ALERT_THRESHOLD = 18.0
BITRATE_ALERT_THRESHOLD_KBPS = 450.0


def is_degraded_values(frame_rate: float, bitrate_kbps: float) -> bool:
    """Operator alert rule: low frame rate *or* starved bitrate."""
    return frame_rate < FPS_ALERT_THRESHOLD or bitrate_kbps < BITRATE_ALERT_THRESHOLD_KBPS


def is_degraded(estimate) -> bool:
    return is_degraded_values(estimate.frame_rate, estimate.bitrate_kbps)


def capture_customer_session(directory: Path) -> Path:
    """Stand-in for a production capture: a Webex call over a congested link,
    exported as a pcap with RTP headers and any ground truth stripped."""
    conditions = (
        [NetworkCondition(throughput_kbps=2000.0, delay_ms=30.0, jitter_ms=4.0)] * 8
        + [NetworkCondition(throughput_kbps=120.0, delay_ms=150.0, jitter_ms=30.0, loss_rate=0.08)] * 8
        + [NetworkCondition(throughput_kbps=1500.0, delay_ms=35.0, jitter_ms=5.0)] * 8
    )
    call = simulate_call(
        SessionConfig(vca="webex", duration_s=24, seed=7, call_id="customer-042"),
        ConditionSchedule(conditions),
    )
    path = directory / "customer-042.pcap"
    operator_view = PacketTrace(
        [p.without_rtp().without_ground_truth().anonymized() for p in call.trace], vca="webex"
    )
    operator_view.to_pcap(path)
    return path


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)

        # -- lab: train once, persist the model --------------------------------
        print("Training the Webex model on lab data ...")
        lab = build_lab_dataset(
            LabDatasetConfig(calls_per_vca=4, call_duration_s=20, vcas=("webex",), seed=3)
        )
        pipeline = QoEPipeline.for_vca("webex").train(lab["webex"])
        model_path = pipeline.save(workdir / "webex.model.json")
        print(f"Saved trained pipeline to {model_path.name} "
              f"({model_path.stat().st_size // 1024} KiB)\n")

        # -- production: load + monitor (no retraining, no lab data) -----------
        pcap_path = capture_customer_session(workdir)
        estimates_path = workdir / "estimates.jsonl"
        summary = SummarySink(degraded_when=is_degraded)

        monitor = QoEMonitor.from_model(
            model_path,
            source=PcapSource(pcap_path),
            sinks=[JSONLinesSink(estimates_path), summary],
        )
        print(f"Monitoring {pcap_path.name} with the saved model (IP/UDP headers only) ...")
        report = monitor.run()
        print(f"Processed {report.n_packets} packets -> {report.n_estimates} "
              f"per-second estimates across {report.n_flows} flow(s).\n")

        # -- what the sinks saw -------------------------------------------------
        for line in estimates_path.read_text().splitlines():
            row = json.loads(line)
            flagged = is_degraded_values(row["frame_rate"], row["bitrate_kbps"])
            flag = "  <-- degraded QoE" if flagged else ""
            print(
                f"t={int(row['window_start']):>3}s  fps={row['frame_rate']:5.1f}  "
                f"bitrate={row['bitrate_kbps']:7.0f} kbps  "
                f"jitter={row['frame_jitter_ms']:5.1f} ms  res={row['resolution']}{flag}"
            )

        for stats in summary.summary().values():
            print(
                f"\n{stats.degraded_windows} of {stats.windows} seconds flagged as degraded "
                f"({100 * stats.degraded_fraction:.0f}%); "
                f"mean fps {stats.mean_frame_rate:.1f}, "
                f"mean bitrate {stats.mean_bitrate_kbps:.0f} kbps."
            )
        print("Flags should cluster inside the congestion window injected between t=8s and t=16s.")


if __name__ == "__main__":
    main()
