"""Unit tests for the RTP substrate: header codec, payload types, streams."""

import pytest

from repro.net.packet import IPv4Header, MediaType, Packet, UDPHeader
from repro.rtp.header import (
    AUDIO_CLOCK_RATE,
    RTPHeader,
    VIDEO_CLOCK_RATE,
    sequence_distance,
    timestamp_distance,
)
from repro.rtp.payload_types import LAB_PAYLOAD_TYPES, REAL_WORLD_PAYLOAD_TYPES, PayloadTypeMap
from repro.rtp.stream import RTPStream, StreamRegistry


class TestRTPHeader:
    def test_encode_decode_round_trip(self):
        header = RTPHeader(payload_type=102, sequence_number=54321, timestamp=123456789, ssrc=0xDEADBEEF, marker=True)
        decoded = RTPHeader.decode(header.encode())
        assert decoded == header

    def test_encoded_length_is_twelve_bytes(self):
        header = RTPHeader(payload_type=96, sequence_number=0, timestamp=0, ssrc=1)
        assert len(header.encode()) == 12

    def test_decode_rejects_short_buffer(self):
        with pytest.raises(ValueError):
            RTPHeader.decode(b"\x80\x66")

    def test_decode_rejects_wrong_version(self):
        data = bytearray(RTPHeader(payload_type=96, sequence_number=1, timestamp=2, ssrc=3).encode())
        data[0] = 0x00  # version 0
        with pytest.raises(ValueError):
            RTPHeader.decode(bytes(data))

    def test_field_validation(self):
        with pytest.raises(ValueError):
            RTPHeader(payload_type=200, sequence_number=0, timestamp=0, ssrc=0)
        with pytest.raises(ValueError):
            RTPHeader(payload_type=96, sequence_number=70000, timestamp=0, ssrc=0)
        with pytest.raises(ValueError):
            RTPHeader(payload_type=96, sequence_number=0, timestamp=2**32, ssrc=0)

    def test_timestamp_seconds(self):
        header = RTPHeader(payload_type=96, sequence_number=0, timestamp=90_000, ssrc=1)
        assert header.timestamp_seconds(VIDEO_CLOCK_RATE) == pytest.approx(1.0)
        header_audio = RTPHeader(payload_type=111, sequence_number=0, timestamp=48_000, ssrc=1)
        assert header_audio.timestamp_seconds(AUDIO_CLOCK_RATE) == pytest.approx(1.0)

    def test_timestamp_seconds_invalid_clock(self):
        header = RTPHeader(payload_type=96, sequence_number=0, timestamp=1, ssrc=1)
        with pytest.raises(ValueError):
            header.timestamp_seconds(0)


class TestSequenceArithmetic:
    def test_forward_distance(self):
        assert sequence_distance(10, 13) == 3

    def test_backward_distance(self):
        assert sequence_distance(13, 10) == -3

    def test_wraparound(self):
        assert sequence_distance(65535, 0) == 1
        assert sequence_distance(0, 65535) == -1

    def test_timestamp_wraparound(self):
        assert timestamp_distance(0xFFFFFFFF, 0) == 1
        assert timestamp_distance(0, 0xFFFFFFFF) == -1


class TestPayloadTypes:
    def test_lab_teams_mapping_matches_paper(self):
        teams = LAB_PAYLOAD_TYPES["teams"]
        assert teams.media_type(111) is MediaType.AUDIO
        assert teams.media_type(102) is MediaType.VIDEO
        assert teams.media_type(103) is MediaType.VIDEO_RTX
        assert teams.media_type(99) is None

    def test_real_world_remapping(self):
        teams = REAL_WORLD_PAYLOAD_TYPES["teams"]
        assert teams.media_type(100) is MediaType.VIDEO
        assert teams.media_type(101) is MediaType.VIDEO_RTX
        webex = REAL_WORLD_PAYLOAD_TYPES["webex"]
        assert webex.media_type(100) is MediaType.VIDEO
        assert webex.video_rtx is None

    def test_reverse_lookup(self):
        teams = LAB_PAYLOAD_TYPES["teams"]
        assert teams.payload_type(MediaType.VIDEO) == 102
        assert teams.payload_type(MediaType.AUDIO) == 111

    def test_video_types_set(self):
        teams = LAB_PAYLOAD_TYPES["teams"]
        assert teams.video_types == {102, 103}
        webex_rw = REAL_WORLD_PAYLOAD_TYPES["webex"]
        assert webex_rw.video_types == {100}

    def test_custom_extra_mapping(self):
        custom = PayloadTypeMap(audio=111, video=96, extra={127: MediaType.CONTROL})
        assert custom.media_type(127) is MediaType.CONTROL


def make_rtp_packet(timestamp, seq, rtp_ts, ssrc=7, pt=102, size=1000, marker=False):
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src="1.1.1.1", dst="2.2.2.2"),
        udp=UDPHeader(src_port=1, dst_port=2),
        payload_size=size,
        rtp=RTPHeader(payload_type=pt, sequence_number=seq, timestamp=rtp_ts, ssrc=ssrc, marker=marker),
        media_type=MediaType.VIDEO,
    )


class TestRTPStream:
    def test_stream_counts_and_unique_timestamps(self):
        stream = RTPStream(ssrc=7, payload_type=102)
        for i in range(6):
            stream.update(make_rtp_packet(0.01 * i, seq=i, rtp_ts=(i // 2) * 3000))
        assert stream.packet_count == 6
        assert len(stream.unique_timestamps) == 3
        assert stream.out_of_order == 0

    def test_out_of_order_detection(self):
        stream = RTPStream(ssrc=7, payload_type=102)
        stream.update(make_rtp_packet(0.0, seq=10, rtp_ts=0))
        stream.update(make_rtp_packet(0.1, seq=12, rtp_ts=0))
        stream.update(make_rtp_packet(0.2, seq=11, rtp_ts=0))
        assert stream.out_of_order == 1
        assert stream.sequence_gaps == 1

    def test_wrong_ssrc_rejected(self):
        stream = RTPStream(ssrc=7, payload_type=102)
        with pytest.raises(ValueError):
            stream.update(make_rtp_packet(0.0, seq=1, rtp_ts=0, ssrc=9))

    def test_non_rtp_packet_rejected(self):
        stream = RTPStream(ssrc=7, payload_type=102)
        packet = make_rtp_packet(0.0, seq=1, rtp_ts=0).without_rtp()
        with pytest.raises(ValueError):
            stream.update(packet)


class TestStreamRegistry:
    def test_discovers_streams_by_ssrc(self):
        registry = StreamRegistry()
        packets = [make_rtp_packet(0.01 * i, seq=i, rtp_ts=i, ssrc=1) for i in range(4)]
        packets += [make_rtp_packet(0.01 * i, seq=i, rtp_ts=i, ssrc=2, pt=111) for i in range(3)]
        registry.observe_all(packets)
        assert len(registry) == 2
        assert 1 in registry and 2 in registry
        assert registry.by_payload_type(111)[0].packet_count == 3

    def test_non_rtp_packets_ignored(self):
        registry = StreamRegistry()
        assert registry.observe(make_rtp_packet(0.0, seq=0, rtp_ts=0).without_rtp()) is None
        assert len(registry) == 0

    def test_by_media_type(self, teams_call):
        registry = StreamRegistry().observe_all(teams_call.trace)
        video_streams = registry.by_media_type(MediaType.VIDEO)
        audio_streams = registry.by_media_type(MediaType.AUDIO)
        assert len(video_streams) == 1
        assert len(audio_streams) == 1
        assert video_streams[0].packet_count > audio_streams[0].packet_count
