"""Packet trace container.

:class:`PacketTrace` is the central data structure of the reproduction: the
simulator produces one per call, the dataset builders persist them to pcap,
and every estimator consumes them.  It keeps packets sorted by arrival time
and provides the slicing/windowing/statistics primitives that the feature
extraction (Table 1) and the heuristics need.

Internally a trace is backed by **either or both** of two representations:

* a sorted ``list[Packet]`` (full fidelity, including simulator metadata) --
  what ``__init__`` builds and every object-level operation uses;
* a columnar :class:`~repro.net.block.PacketBlock` (struct of arrays) --
  built lazily via :attr:`block` and sliced directly by :meth:`time_slice`
  / :meth:`iter_windows`, so windowing costs O(log n) index arithmetic plus
  O(1) array views instead of per-packet list copies.

Traces created from a block (:meth:`from_block`, block-sliced windows)
materialize packet objects only when something actually needs them.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.net.packet import MediaType, Packet

if TYPE_CHECKING:  # pragma: no cover - import only needed for type checkers
    from repro.net.block import PacketBlock

__all__ = ["PacketTrace", "TraceStats", "window_grid"]


def window_grid(start: float, window_s: float, end: float):
    """Yield ``(k, t, next_t)`` for consecutive windows covering ``[start, end)``.

    The single source of truth for the drift-free window grid: boundaries are
    computed as ``start + k * window_s`` (index multiplication, no float
    accumulation) and each window's upper bound *is* the next window's start,
    so on fractional grids no timestamp can be double-counted or dropped.
    Every windowing code path (batch slicing, heuristic attribution, the
    streaming engine's ``window_index``) must agree with this arithmetic to
    the last ulp.
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    k = 0
    t = start
    while t < end:
        next_t = start + (k + 1) * window_s
        yield k, t, next_t
        k += 1
        t = next_t


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics for a trace (or a slice of one)."""

    n_packets: int
    n_bytes: int
    duration: float
    start_time: float
    end_time: float
    mean_packet_size: float
    mean_interarrival: float

    @property
    def throughput_bps(self) -> float:
        """Average throughput in bits per second over the trace duration."""
        if self.duration <= 0:
            return 0.0
        return 8.0 * self.n_bytes / self.duration


class PacketTrace:
    """An ordered sequence of packets belonging to one capture.

    Packets are kept sorted by timestamp; out-of-order insertion is allowed
    and re-sorted lazily, mirroring the fact that a passive monitor records
    packets in arrival order even when the RTP sequence numbers say otherwise.
    """

    def __init__(self, packets: Iterable[Packet] = (), vca: str | None = None) -> None:
        self._packets: list[Packet] | None = sorted(packets, key=lambda p: p.timestamp)
        self.vca = vca
        #: Cached columnar view (rebuilt after mutation), built only when a
        #: column consumer asks for it.
        self._block: PacketBlock | None = None
        #: Cheap timestamp-only cache for slicing/stats on list-backed
        #: traces that never need the full columns.
        self._times: np.ndarray | None = None

    @classmethod
    def from_block(cls, block: "PacketBlock", vca: str | None = None) -> "PacketTrace":
        """A trace backed by a (timestamp-sorted) columnar block.

        Packet objects are materialized lazily: array-level operations
        (slicing, windowing, statistics) run on the columns directly.
        """
        trace = cls.__new__(cls)
        trace._packets = None
        trace._block = block
        trace._times = None
        trace.vca = vca
        return trace

    # -- representation management --------------------------------------------

    def _materialized(self) -> list[Packet]:
        """The packet-object list, built from the block on first need."""
        if self._packets is None:
            assert self._block is not None
            self._packets = self._block.to_packets()
        return self._packets

    @property
    def block(self) -> "PacketBlock":
        """The columnar (struct-of-arrays) view of this trace, cached.

        Built on first access from the packet list (keeping the original
        objects attached, so nothing is lost in-process); invalidated by
        mutation.  Slicing operations share it: a ``time_slice`` of a trace
        whose block exists is an O(1) pair of array views.
        """
        if self._block is None:
            from repro.net.block import PacketBlock

            self._block = PacketBlock.from_packets(self._materialized())
        return self._block

    def _invalidate(self) -> None:
        self._block = None
        self._times = None

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        if self._packets is not None:
            return len(self._packets)
        return len(self._block)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._materialized())

    def __getitem__(self, index):
        if isinstance(index, slice):
            if self._packets is None:
                return PacketTrace.from_block(self._block[index], vca=self.vca)
            sliced = PacketTrace(self._packets[index], vca=self.vca)
            return sliced
        return self._materialized()[index]

    def __bool__(self) -> bool:
        return len(self) > 0

    # -- construction ---------------------------------------------------------

    def append(self, packet: Packet) -> None:
        """Add a packet, preserving timestamp order."""
        packets = self._materialized()
        if packets and packet.timestamp < packets[-1].timestamp:
            position = bisect_left([p.timestamp for p in packets], packet.timestamp)
            packets.insert(position, packet)
        else:
            packets.append(packet)
        self._invalidate()

    def extend(self, packets: Iterable[Packet]) -> None:
        for packet in packets:
            self.append(packet)

    @classmethod
    def from_pcap(cls, path: str | Path, vca: str | None = None, parse_rtp: bool = True) -> "PacketTrace":
        """Load a trace from a pcap file (see :mod:`repro.net.pcap`)."""
        from repro.net.pcap import read_pcap

        return cls(read_pcap(path, parse_rtp=parse_rtp), vca=vca)

    def to_pcap(self, path: str | Path) -> int:
        """Persist the trace to a pcap file; returns the number of records."""
        from repro.net.pcap import write_pcap

        return write_pcap(path, self._materialized())

    # -- views ----------------------------------------------------------------

    @property
    def packets(self) -> list[Packet]:
        return list(self._materialized())

    def _timestamps_cached(self) -> np.ndarray:
        """The timestamp array: the block column when built, else a flat cache.

        Timestamp-only consumers (``start_time``, slicing index, stats) must
        not force full columnarization of a list-backed trace; the block is
        built only when something needs actual columns.
        """
        if self._block is not None:
            return self._block.timestamps
        if self._times is None or len(self._times) != len(self._packets):
            self._times = np.fromiter(
                (p.timestamp for p in self._packets), dtype=float, count=len(self._packets)
            )
        return self._times

    @property
    def timestamps(self) -> np.ndarray:
        return self._timestamps_cached().copy()

    @property
    def sizes(self) -> np.ndarray:
        if self._block is not None:
            return self._block.sizes.astype(float)
        return np.array([p.payload_size for p in self._packets], dtype=float)

    @property
    def start_time(self) -> float:
        if not len(self):
            return 0.0
        return float(self._timestamps_cached()[0])

    @property
    def end_time(self) -> float:
        if not len(self):
            return 0.0
        return float(self._timestamps_cached()[-1])

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def filter(self, predicate) -> "PacketTrace":
        """A new trace containing only packets for which ``predicate`` is true."""
        return PacketTrace((p for p in self._materialized() if predicate(p)), vca=self.vca)

    def filter_media(self, *media_types: MediaType) -> "PacketTrace":
        """Ground-truth media filter (evaluation only)."""
        wanted = set(media_types)
        return self.filter(lambda p: p.media_type in wanted)

    def without_rtp(self) -> "PacketTrace":
        """The trace as seen by an IP/UDP-only monitor (RTP headers stripped)."""
        return PacketTrace((p.without_rtp() for p in self._materialized()), vca=self.vca)

    def without_ground_truth(self) -> "PacketTrace":
        """The trace with simulator annotations removed."""
        return PacketTrace((p.without_ground_truth() for p in self._materialized()), vca=self.vca)

    def time_slice(self, start: float, end: float) -> "PacketTrace":
        """Packets with ``start <= timestamp < end`` (binary search, O(log n)).

        When the trace's columnar block exists, repeated slicing (as in
        windowing) costs a binary search plus O(1) array views per call; the
        resulting trace materializes packet objects only if asked for them.
        """
        times = self._timestamps_cached()
        lo = int(np.searchsorted(times, start, side="left"))
        hi = int(np.searchsorted(times, end, side="left"))
        return self.time_slice_by_index(lo, hi)

    def shifted(self, offset: float) -> "PacketTrace":
        """A copy with every timestamp shifted by ``offset`` seconds."""
        from dataclasses import replace

        return PacketTrace(
            (replace(p, timestamp=p.timestamp + offset) for p in self._materialized()),
            vca=self.vca,
        )

    def normalized(self) -> "PacketTrace":
        """A copy with timestamps re-based so the first packet arrives at t=0."""
        if not len(self):
            return PacketTrace([], vca=self.vca)
        return self.shifted(-self.start_time)

    # -- statistics -----------------------------------------------------------

    def interarrival_times(self) -> np.ndarray:
        """Consecutive arrival-time differences (empty for <2 packets)."""
        if len(self) < 2:
            return np.array([], dtype=float)
        return np.diff(self.timestamps)

    def stats(self) -> TraceStats:
        """Aggregate statistics for the whole trace."""
        if not len(self):
            return TraceStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
        sizes = self.sizes
        iats = self.interarrival_times()
        return TraceStats(
            n_packets=len(self),
            n_bytes=int(sizes.sum()),
            duration=self.duration,
            start_time=self.start_time,
            end_time=self.end_time,
            mean_packet_size=float(sizes.mean()),
            mean_interarrival=float(iats.mean()) if len(iats) else 0.0,
        )

    def iter_windows(self, window: float, start: float | None = None, end: float | None = None):
        """Yield ``(window_start, PacketTrace)`` pairs covering [start, end).

        Windows are aligned to ``start`` (default: trace start) and have a
        fixed duration; empty windows are yielded too so that per-second
        estimates line up with the webrtc-internals ground truth rows even
        when no packets arrived in a second.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        if not len(self):
            return
        if start is None:
            start = self.start_time
        if end is None:
            end = self.end_time
        times = self._timestamps_cached()
        for _, t, next_t in window_grid(start, window, end):
            lo = int(np.searchsorted(times, t, side="left"))
            hi = int(np.searchsorted(times, next_t, side="left"))
            yield t, self.time_slice_by_index(lo, hi)

    def time_slice_by_index(self, lo: int, hi: int) -> "PacketTrace":
        """The sub-trace of rows ``[lo, hi)`` (positions, not timestamps)."""
        if self._packets is None:
            return PacketTrace.from_block(self._block[lo:hi], vca=self.vca)
        sliced = PacketTrace.__new__(PacketTrace)
        sliced._packets = self._packets[lo:hi]
        sliced._block = self._block[lo:hi] if self._block is not None else None
        sliced._times = None
        sliced.vca = self.vca
        return sliced
