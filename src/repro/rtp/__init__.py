"""RTP substrate: header codec, per-VCA payload type maps, stream bookkeeping."""

from repro.rtp.header import RTPHeader, VIDEO_CLOCK_RATE, AUDIO_CLOCK_RATE
from repro.rtp.payload_types import PayloadTypeMap, LAB_PAYLOAD_TYPES, REAL_WORLD_PAYLOAD_TYPES
from repro.rtp.stream import RTPStream, StreamRegistry

__all__ = [
    "RTPHeader",
    "VIDEO_CLOCK_RATE",
    "AUDIO_CLOCK_RATE",
    "PayloadTypeMap",
    "LAB_PAYLOAD_TYPES",
    "REAL_WORLD_PAYLOAD_TYPES",
    "RTPStream",
    "StreamRegistry",
]
