"""Unit tests for audio, retransmission and control streams and rate control."""

import numpy as np
import pytest

from repro.net.packet import MediaType
from repro.webrtc.audio import AudioStream
from repro.webrtc.packetizer import PacketizerConfig
from repro.webrtc.profiles import get_profile
from repro.webrtc.rate_control import FeedbackReport, RateController
from repro.webrtc.retransmission import RetransmissionStream, generate_control_handshake


@pytest.fixture
def config():
    return PacketizerConfig(
        src_ip="192.0.2.10", dst_ip="10.0.0.1", src_port=3478, dst_port=50000, ssrc=5, payload_type=111
    )


class TestAudioStream:
    def test_packet_rate_matches_opus_framing(self, config, rng):
        stream = AudioStream(get_profile("teams"), config, rng)
        packets = stream.generate_second(2.0)
        assert len(packets) == 50
        assert all(2.0 <= p.timestamp < 3.0 for p in packets)

    def test_sizes_within_paper_range(self, config, rng):
        profile = get_profile("teams")
        stream = AudioStream(profile, config, rng)
        sizes = [p.payload_size for second in range(5) for p in stream.generate_second(float(second))]
        low, high = profile.audio_size_range
        assert min(sizes) >= low
        assert max(sizes) <= high

    def test_packets_marked_audio_with_audio_payload_type(self, config, rng):
        packets = AudioStream(get_profile("teams"), config, rng).generate_second(0.0)
        assert all(p.media_type is MediaType.AUDIO for p in packets)
        assert all(p.rtp.payload_type == 111 for p in packets)

    def test_sequence_numbers_increase(self, config, rng):
        stream = AudioStream(get_profile("meet"), config, rng)
        packets = stream.generate_second(0.0) + stream.generate_second(1.0)
        seqs = [p.rtp.sequence_number for p in packets]
        assert all((b - a) % 65536 == 1 for a, b in zip(seqs, seqs[1:]))


class TestRetransmissionStream:
    def _video_packet(self, packetizer_config, size=1000, frame_id=9):
        from repro.net.packet import IPv4Header, Packet, UDPHeader
        from repro.rtp.header import RTPHeader

        return Packet(
            timestamp=0.5,
            ip=IPv4Header(src="192.0.2.10", dst="10.0.0.1"),
            udp=UDPHeader(src_port=3478, dst_port=50000),
            payload_size=size,
            rtp=RTPHeader(payload_type=102, sequence_number=17, timestamp=9000, ssrc=3),
            media_type=MediaType.VIDEO,
            frame_id=frame_id,
            metadata={"frame_packets": 4, "height": 480, "app_bytes": size - 36},
        )

    def test_keepalives_have_fixed_size(self, config, rng):
        profile = get_profile("teams")
        stream = RetransmissionStream(profile, config, rng)
        packets = stream.generate_second(0.0)
        assert packets, "expected keep-alive packets"
        assert all(p.payload_size == profile.keepalive_size for p in packets)
        assert all(p.media_type is MediaType.VIDEO_RTX for p in packets)

    def test_retransmissions_carry_original_frame_identity(self, config, rng):
        profile = get_profile("teams")
        stream = RetransmissionStream(profile, config, rng)
        lost = self._video_packet(config)
        packets = stream.generate_second(1.0, lost_video_packets=[lost])
        retransmissions = [p for p in packets if p.metadata.get("retransmission")]
        assert len(retransmissions) == 1
        assert retransmissions[0].frame_id == 9
        assert retransmissions[0].payload_size == lost.payload_size

    def test_retransmission_cap(self, config, rng):
        profile = get_profile("teams")
        stream = RetransmissionStream(profile, config, rng)
        lost = [self._video_packet(config, frame_id=i) for i in range(40)]
        packets = stream.generate_second(1.0, lost_video_packets=lost)
        retransmissions = [p for p in packets if p.metadata.get("retransmission")]
        assert len(retransmissions) == stream.MAX_RETRANSMISSIONS_PER_SECOND

    def test_disabled_rtx_produces_nothing(self, config, rng):
        from dataclasses import replace

        profile = replace(get_profile("teams"), uses_rtx=False)
        stream = RetransmissionStream(profile, config, rng)
        assert stream.generate_second(0.0) == []


class TestControlHandshake:
    def test_handshake_packets_are_control_and_non_rtp(self, config, rng):
        packets = generate_control_handshake(config, rng)
        assert len(packets) >= 4
        assert all(p.media_type is MediaType.CONTROL for p in packets)
        assert all(p.rtp is None for p in packets)

    def test_some_handshake_packets_exceed_video_threshold(self, config, rng):
        packets = generate_control_handshake(config, rng)
        assert any(p.payload_size >= 450 for p in packets)


class TestRateController:
    def test_increases_under_clean_conditions(self):
        profile = get_profile("teams")
        controller = RateController(profile, rng=np.random.default_rng(0))
        start = controller.target_kbps
        for _ in range(10):
            controller.update(FeedbackReport(loss_fraction=0.0, receive_rate_kbps=start, queue_delay_ms=5.0, rtt_ms=50.0))
        assert controller.target_kbps > start

    def test_backs_off_under_heavy_loss(self):
        profile = get_profile("teams")
        controller = RateController(profile, rng=np.random.default_rng(0))
        start = controller.target_kbps
        controller.update(FeedbackReport(loss_fraction=0.3, receive_rate_kbps=800.0, queue_delay_ms=5.0, rtt_ms=50.0))
        assert controller.target_kbps < start

    def test_delay_overuse_converges_to_receive_rate(self):
        profile = get_profile("teams")
        controller = RateController(profile, rng=np.random.default_rng(0))
        for _ in range(5):
            controller.update(FeedbackReport(loss_fraction=0.0, receive_rate_kbps=400.0, queue_delay_ms=150.0, rtt_ms=200.0))
        assert controller.target_kbps < 500.0

    def test_target_stays_within_profile_bounds(self):
        profile = get_profile("webex")
        controller = RateController(profile, rng=np.random.default_rng(1))
        for _ in range(50):
            controller.update(FeedbackReport(loss_fraction=0.0, receive_rate_kbps=10_000.0, queue_delay_ms=0.0, rtt_ms=20.0))
        assert controller.target_kbps <= profile.max_bitrate_kbps
        for _ in range(50):
            controller.update(FeedbackReport(loss_fraction=0.5, receive_rate_kbps=10.0, queue_delay_ms=500.0, rtt_ms=900.0))
        assert controller.target_kbps >= profile.min_bitrate_kbps

    def test_reset_restores_start_bitrate(self):
        profile = get_profile("meet")
        controller = RateController(profile, rng=np.random.default_rng(2))
        controller.update(FeedbackReport(loss_fraction=0.4, receive_rate_kbps=100.0, queue_delay_ms=100.0, rtt_ms=300.0))
        controller.reset()
        assert controller.target_kbps == profile.start_bitrate_kbps

    def test_invalid_feedback_rejected(self):
        with pytest.raises(ValueError):
            FeedbackReport(loss_fraction=1.5, receive_rate_kbps=0.0, queue_delay_ms=0.0, rtt_ms=0.0)
        with pytest.raises(ValueError):
            FeedbackReport(loss_fraction=0.0, receive_rate_kbps=-1.0, queue_delay_ms=0.0, rtt_ms=0.0)
