"""The sharded monitor facade: N engines behind one router and one fan-in.

:class:`ShardedQoEMonitor` has the same surface as
:class:`~repro.monitor.QoEMonitor` -- construct with a pipeline, a source
and sinks, call :meth:`run`, get a :class:`~repro.monitor.MonitorReport` --
but executes as an N-worker deployment:

* the parent consumes the source and routes packets through a
  :class:`~repro.cluster.router.FlowShardRouter` (hash of the canonical
  5-tuple), batching them into per-shard chunks;
* each :class:`~repro.cluster.worker.ShardWorker` process runs its own
  :class:`~repro.core.streaming.StreamingQoEPipeline`, rebuilt from the
  ``QoEPipeline.save`` payload, with cross-flow **tick-batched inference**
  (one vectorized forest call per chunk);
* a :class:`~repro.cluster.fanin.FanInSink` merges the per-shard estimate
  streams back into one watermark-ordered stream feeding the caller's
  ordinary sinks.

**Determinism contract.**  The estimates are exactly those the
single-process monitor produces (same flows, same windows, bit-identical
values -- per-flow streams are independent, and batched inference is
row-independent), delivered in the fan-in order ``(window_start, flow)``.
Output is therefore identical for any worker count, including 1, and
repeatable across runs.

Back-pressure and liveness: per-shard input queues are bounded, the parent
drains worker output whenever it would block on input, and a worker that
dies without reporting raises instead of hanging the run.
"""

from __future__ import annotations

import json
import multiprocessing
import queue as queue_module
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.pipeline import QoEPipeline
from repro.cluster.fanin import FanInSink
from repro.cluster.rebalance import RebalancePolicy, ShardLoad, summarize_migrations
from repro.cluster.router import FlowShardRouter
from repro.cluster.shm import DEFAULT_SLOT_BYTES, BlockRing, shm_available
from repro.cluster.worker import ShardWorker
from repro.monitor import MonitorReport
from repro.obs.config import ObsConfig
from repro.obs.registry import MetricsRegistry, ingest_transport_stats
from repro.net.estwire import EstimateBatch
from repro.net.flows import five_tuple
from repro.sources.base import PacketSource, as_source, iter_blocks

__all__ = ["ShardedQoEMonitor"]

_TRANSPORTS = ("shm", "block", "packets")
_SHM_RETURNS = ("ring", "queue")


class _ShmBatcher:
    """Parent-side forward batcher: packs routed sub-blocks into ring slots.

    Sub-blocks accumulate (as references, nothing is copied) until the next
    one would overflow a slot, then the whole batch is flat-encoded into
    **one** ring slot behind length-prefixed segment headers -- two
    semaphore ops and a single ``("shm",)`` token no matter how many routed
    ticks ride in it.  The worker consumes each segment as its own
    inference tick, so batching changes wire granularity, never the tick
    sequence.  Blocks the codec cannot flatten (RTP object columns) or that
    outsize a slot even after row-splitting fall back to the pickling
    queue -- always behind a flush, so fallback messages cannot overtake
    slots already filled and everything still arrives in routed order.
    """

    def __init__(self, monitor: "ShardedQoEMonitor", worker: ShardWorker, batch_slots: bool = True) -> None:
        self._monitor = monitor
        self._worker = worker
        self._ring = worker.ring
        self._batch_slots = batch_slots
        self._pending: list[tuple[int, object]] = []
        self._pending_cost = 0
        self._queue_fallbacks = 0

    def add(self, block) -> None:
        """Queue one routed sub-block, flushing or falling back as needed."""
        ring = self._ring
        try:
            size = block.byte_size()
        except ValueError:
            # Not flat-encodable (object columns): the queue still is.
            self.flush()
            self._queue_fallbacks += 1
            self._monitor._send(self._worker, ("block", block))
            return
        if size > ring.max_segment_bytes:
            if len(block) <= 1:
                # A single row that out-sizes a slot (pathological side
                # tables): the queue handles it, correctness over zero-copy.
                self.flush()
                self._queue_fallbacks += 1
                self._monitor._send(self._worker, ("block", block))
                return
            mid = len(block) // 2
            self.add(block[:mid].compact())
            self.add(block[mid:].compact())
            return
        cost = ring.segment_cost(size)
        if self._pending and self._pending_cost + cost > ring.slot_bytes:
            self.flush()
        self._pending.append((size, block))
        self._pending_cost += cost
        if not self._batch_slots:
            self.flush()

    def flush(self) -> None:
        """Write every pending sub-block into one slot and announce it.

        Bounded push that keeps draining output, mirroring ``_send``: ring
        back-pressure must not deadlock the parent against a worker blocked
        on its own output (the pump also frees return-ring slots), and a
        dead worker must raise.
        """
        if not self._pending:
            return
        payloads = [(size, block.write_into) for size, block in self._pending]
        worker = self._worker
        while not self._ring.try_push_segments(payloads, timeout=0.05):
            self._monitor._pump()
            if not worker.alive and not self._monitor._done[worker.shard_id]:
                raise RuntimeError(
                    f"shard worker {worker.shard_id} died (exit code "
                    f"{worker.process.exitcode}) before accepting input"
                ) from None
        self._pending = []
        self._pending_cost = 0
        self._monitor._send(worker, ("shm",))

    def stats(self) -> dict:
        """Forward-path transport counters for the shard's stats surface."""
        stats = dict(self._ring.transport_stats())
        stats["queue_fallbacks"] = self._queue_fallbacks
        return stats


class _RebalanceDriver:
    """Parent-side rebalancing loop: observe load, tick the policy, migrate.

    Keeps per-shard, per-canonical-flow packet counts from the routing path
    (so a load signal exists even before the first worker telemetry
    arrives) and a stream-time clock from packet timestamps, so policy
    ticks -- and therefore migrations -- are a deterministic function of
    the trace and the policy, not of scheduler timing.
    """

    def __init__(self, monitor: "ShardedQoEMonitor", policy: RebalancePolicy) -> None:
        self._monitor = monitor
        self._policy = policy
        self._now: float | None = None
        self._interval_start: float | None = None
        self._flow_packets: list[dict] = [{} for _ in range(monitor.n_workers)]
        self._interval_packets = [0] * monitor.n_workers

    def observe_block(self, block) -> None:
        """Account one source block (called before it is partitioned)."""
        if not len(block):
            return
        codes, counts = np.unique(block.flow_codes, return_counts=True)
        for code, count in zip(codes.tolist(), counts.tolist()):
            self._note(block.flows[code], count)
        self._advance(float(block.timestamps.max()))

    def observe_packet(self, packet) -> None:
        """Account one source packet (the legacy per-packet transport)."""
        self._note(five_tuple(packet), 1)
        self._advance(packet.timestamp)

    def _note(self, key, count: int) -> None:
        shard_id = self._monitor.router.shard_of_key(key)
        canonical = key.bidirectional()[0]
        flow_packets = self._flow_packets[shard_id]
        flow_packets[canonical] = flow_packets.get(canonical, 0) + count
        self._interval_packets[shard_id] += count

    def _advance(self, timestamp: float) -> None:
        if self._now is None or timestamp > self._now:
            self._now = timestamp
        if self._interval_start is None:
            self._interval_start = timestamp

    def tick(self) -> None:
        """Run the policy once per elapsed ``interval_s`` of stream time."""
        if self._now is None or self._interval_start is None:
            return
        if self._now - self._interval_start < self._policy.interval_s:
            return
        monitor = self._monitor
        loads = []
        for shard_id in range(monitor.n_workers):
            telemetry = monitor.shard_loads[shard_id] or {}
            loads.append(
                ShardLoad(
                    shard_id=shard_id,
                    live_flows=telemetry.get("live_flows", 0),
                    buffered_packets=telemetry.get("buffered_packets", 0),
                    open_windows=telemetry.get("open_windows", 0),
                    interval_packets=self._interval_packets[shard_id],
                    flow_packets=self._flow_packets[shard_id],
                )
            )
        for migration in self._policy.plan(self._now, loads)[: self._policy.max_migrations]:
            monitor._migrate(migration.flow, migration.dst)
        self._interval_start = self._now
        self._flow_packets = [{} for _ in range(monitor.n_workers)]
        self._interval_packets = [0] * monitor.n_workers


class ShardedQoEMonitor:
    """Run a trained-or-heuristic pipeline as an N-worker sharded deployment.

    Parameters
    ----------
    pipeline:
        The estimator stack; it is serialized via
        :meth:`~repro.core.pipeline.QoEPipeline.to_payload` and rebuilt
        inside every worker.
    source:
        Anything :func:`~repro.sources.base.as_source` understands -- the
        same sources a :class:`~repro.monitor.QoEMonitor` takes, unchanged.
    sinks:
        A sink or sequence of sinks receiving the merged estimate stream.
    config:
        Overrides ``pipeline.config`` for the workers (e.g. enabling
        ``idle_timeout_s``).  Must keep ``demux_flows=True``: sharding *is*
        flow demultiplexing.
    n_workers:
        Shard count.  ``1`` is a valid (and useful) degenerate case: same
        output, one worker process.
    chunk_size:
        Packets per routed chunk.  A chunk is both the pickling unit
        (amortizing IPC overhead) and the inference tick (windows closing in
        the same chunk share one vectorized forest call).
    transport:
        ``"block"`` (default): the source is consumed as columnar
        :class:`~repro.net.block.PacketBlock` batches
        (:func:`~repro.sources.base.iter_blocks`), each split into
        per-shard sub-blocks with one CRC-32 per *unique flow* (memoized)
        and shipped as raw array buffers; workers run the engine's columnar
        :meth:`push_block <repro.core.streaming.StreamingQoEPipeline.push_block>`
        path.  ``"shm"``: the same routing, but sub-blocks are flat-encoded
        straight into a per-shard shared-memory
        :class:`~repro.cluster.shm.BlockRing` (several per slot -- see
        ``shm_batch_slots``) and decoded as zero-copy array views on the
        worker side, while estimates come back the same way over a reverse
        ring per shard (see ``shm_return``) -- no pickling of any payload
        in either direction; only slot tokens and control messages ride the
        queues.  Blocks the codec cannot flatten (RTP object columns) or
        that exceed a ring slot even after splitting fall back to the queue
        per block, so output never depends on the transport.
        ``"packets"``: the legacy per-packet routing that pickles
        ``Packet`` lists.  All three transports emit bit-identical
        estimates in identical order (pinned by ``tests/cluster/``); they
        differ only in wire cost.
    queue_depth:
        Bound of each shard's input queue, and -- on the ``"shm"``
        transport -- the slot count of its block rings (the pairing:
        every filled ring slot is announced by one queued token).  This is
        the back-pressure knob: a slow shard can be at most ``queue_depth``
        slots behind the router before the router blocks.
    shm_return:
        ``"ring"`` (default): per-tick estimate batches are flat-encoded
        (:class:`~repro.net.estwire.EstimateBatch`) into a reverse
        per-shard ring and announced with ``("est", shard_id)`` tokens --
        the zero-pickle return path.  ``"queue"``: the classic pickled
        ``progress`` messages.  Output is bit-identical either way
        (``"shm"`` transport only).
    shm_batch_slots:
        When true (default), both directions pack multiple flat-encoded
        payloads into a single ring slot behind length-prefixed segment
        headers -- forward slots flush when the next sub-block would
        overflow, reverse slots flush on watermark advance or slot-full --
        so small chunk sizes stop paying two semaphore ops per payload.
        Set false to write one payload per slot (``"shm"`` transport only).
    shm_slot_bytes:
        Payload capacity of one ring slot (``"shm"`` transport only;
        default :data:`~repro.cluster.shm.DEFAULT_SLOT_BYTES`).  The router
        splits blocks that encode larger than this, so it bounds shared
        memory (``n_workers * queue_depth * shm_slot_bytes``), not what can
        be shipped.
    start_method:
        ``multiprocessing`` start method; the default ``"spawn"`` is the
        portable choice and what the workers are built to be safe under.
    new_flow_slack_s:
        Assumed bound on cross-flow disorder in the source, used for fan-in
        watermarks (default: two windows).  Larger values delay fan-in
        release; smaller values risk out-of-order delivery on skewed
        sources.
    rebalance:
        A :class:`~repro.cluster.rebalance.RebalancePolicy` enabling
        **elastic sharding**: at every ``interval_s`` of stream time the
        policy sees per-shard load (worker telemetry + the parent's routing
        counts) and plans up to ``max_migrations`` flow re-homings, each
        executed as a synchronous stop-and-copy cut -- the old shard drains
        the flow into a :class:`~repro.net.flowwire.FlowSnapshot`, the new
        shard restores it push-identically, and the fan-in fences releases
        across the cut so the merged output stays bit-identical to (and in
        the same order as) a run that never migrated.  ``None`` (default)
        preserves the static CRC-32 map with zero overhead beyond one falsy
        branch per routed flow lookup.
    obs:
        An :class:`~repro.obs.config.ObsConfig` enabling the unified
        telemetry plane (PR 8): the parent owns a fleet
        :class:`~repro.obs.registry.MetricsRegistry`, every worker records
        into its own and ships deltas on the messages it already sends
        (``progress``/``est``/``done`` -- no extra queue traffic), and
        :meth:`metrics` / ``MonitorReport.metrics`` expose the merged view
        (:func:`~repro.obs.render.render_prometheus` turns it into a
        scrape).  ``None`` or ``ObsConfig(enabled=False)`` (default) keeps
        the whole plane at one falsy branch per hot-path call; estimates
        are bit-identical either way (pinned by
        ``tests/cluster/test_obs_plane.py``).
    """

    def __init__(
        self,
        pipeline: QoEPipeline,
        source,
        sinks=(),
        config: PipelineConfig | None = None,
        n_workers: int = 2,
        chunk_size: int = 256,
        transport: str = "block",
        start_method: str = "spawn",
        new_flow_slack_s: float | None = None,
        queue_depth: int = 8,
        shm_slot_bytes: int | None = None,
        shm_return: str = "ring",
        shm_batch_slots: bool = True,
        rebalance: RebalancePolicy | None = None,
        obs: ObsConfig | None = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
        if transport not in _TRANSPORTS:
            raise ValueError(f"transport must be one of {_TRANSPORTS}, got {transport!r}")
        if shm_return not in _SHM_RETURNS:
            raise ValueError(
                f"shm_return must be one of {_SHM_RETURNS}, got {shm_return!r}"
            )
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth!r}")
        if transport == "shm" and not shm_available():
            raise RuntimeError(
                "transport='shm' requires a working multiprocessing.shared_memory "
                "(unavailable or denied on this platform); use transport='block'"
            )
        self.pipeline = pipeline
        self.source: PacketSource = as_source(source)
        if hasattr(sinks, "emit"):  # a single sink was passed
            sinks = (sinks,)
        self.sinks = tuple(sinks)
        self.config = config if config is not None else pipeline.config
        if not self.config.demux_flows:
            raise ValueError(
                "a sharded monitor requires demux_flows=True (sharding partitions flows); "
                "use QoEMonitor(batch_grid=True) for single-session batch scoring"
            )
        self.router = FlowShardRouter(n_workers)
        self.n_workers = n_workers
        self.chunk_size = chunk_size
        self.transport = transport
        self.start_method = start_method
        self.new_flow_slack_s = new_flow_slack_s
        self.queue_depth = queue_depth
        self.shm_slot_bytes = shm_slot_bytes
        self.shm_return = shm_return
        self.shm_batch_slots = shm_batch_slots
        self.rebalance = rebalance
        self.obs = obs
        #: The fleet registry (``None`` when observability is off): the
        #: parent's own spans plus every worker delta, merged.
        self.registry: MetricsRegistry | None = (
            MetricsRegistry(obs) if obs is not None and obs.enabled else None
        )
        #: Per-shard ``{"n_packets", "n_flows", "n_evicted_flows", "load"}``
        #: of the completed run (index = shard id); on the ``"shm"``
        #: transport a ``"transport"`` entry adds per-direction ring
        #: telemetry (occupancy high-water mark, slots written/reused,
        #: segments per slot, queue fallbacks).
        self.shard_stats: list[dict] = []
        #: Latest per-shard load telemetry (index = shard id; ``None`` until
        #: a shard's first watermark-bearing message arrives).  Live during
        #: the run -- this is the mid-run load signal the rebalancer reads.
        self.shard_loads: list[dict | None] = [None] * n_workers
        #: Completed migrations, in execution order: ``{"epoch", "flow",
        #: "src", "dst", "latency_s"}`` per re-homing.
        self.migrations: list[dict] = []
        self._ran = False

    # -- construction shortcuts ------------------------------------------------

    @classmethod
    def for_vca(cls, vca: str, source, sinks=(), config: PipelineConfig | None = None, **kwargs) -> "ShardedQoEMonitor":
        """An untrained (heuristic-backed) sharded monitor for ``vca``."""
        return cls(QoEPipeline.for_vca(vca, config=config), source, sinks, **kwargs)

    @classmethod
    def from_model(
        cls,
        path: str | Path,
        source,
        sinks=(),
        config: PipelineConfig | None = None,
        **kwargs,
    ) -> "ShardedQoEMonitor":
        """Deploy a model trained elsewhere across N local workers."""
        return cls(QoEPipeline.load(path), source, sinks=sinks, config=config, **kwargs)

    # -- execution -------------------------------------------------------------

    def run(self) -> MonitorReport:
        """Consume the source to exhaustion across the workers.

        One-shot, like :meth:`QoEMonitor.run <repro.monitor.QoEMonitor.run>`:
        sinks are closed at the end, so construct a new monitor (with fresh
        sinks) for the next capture.
        """
        if self._ran:
            raise RuntimeError(
                "this monitor already ran and closed its sinks; construct a new "
                "ShardedQoEMonitor (with fresh sinks) for the next capture"
            )
        self._ran = True
        started = perf_counter()
        ctx = multiprocessing.get_context(self.start_method)
        out_queue = ctx.Queue()
        payload_json = json.dumps(self.pipeline.to_payload())
        forward_rings: list[BlockRing] = []
        return_rings: list[BlockRing] = []
        if self.transport == "shm":
            slot_bytes = (
                self.shm_slot_bytes if self.shm_slot_bytes is not None else DEFAULT_SLOT_BYTES
            )
            forward_rings = [
                BlockRing.create(ctx, self.queue_depth, slot_bytes)
                for _ in range(self.n_workers)
            ]
            if self.shm_return == "ring":
                return_rings = [
                    BlockRing.create(ctx, self.queue_depth, slot_bytes)
                    for _ in range(self.n_workers)
                ]
        rings = forward_rings + return_rings
        try:
            workers = [
                ShardWorker(
                    shard_id,
                    payload_json,
                    self.config,
                    ctx,
                    out_queue,
                    queue_depth=self.queue_depth,
                    new_flow_slack_s=self.new_flow_slack_s,
                    ring=forward_rings[shard_id] if forward_rings else None,
                    return_ring=return_rings[shard_id] if return_rings else None,
                    batch_slots=self.shm_batch_slots,
                    obs_dict=self.obs.to_dict() if self.registry is not None else None,
                )
                for shard_id in range(self.n_workers)
            ]
            fan_in = FanInSink(self.sinks, n_shards=self.n_workers, obs=self.registry)
        except BaseException:
            # The main try/finally below is not reached: reclaim the
            # segments here or a failed construction (fd exhaustion, a bad
            # sink) would leak them for the life of the parent.
            for ring in rings:
                ring.close()
                ring.unlink()
            raise
        self._out_queue = out_queue
        self._fan_in = fan_in
        self._workers = workers
        self._rings = rings
        self._return_rings = return_rings
        self._batchers: list[_ShmBatcher] | None = None
        self._buffers: list[list] | None = None
        self._done = [False] * self.n_workers
        self._stats: list[dict | None] = [None] * self.n_workers
        #: In-flight migration plumbing: ``migrated`` replies awaiting
        #: pickup, fences installed, and per-dst fences acked but not yet
        #: lifted (waiting for the dst's first post-restore watermark).
        self._migrated: dict[int, tuple] = {}
        self._live_fences: set[int] = set()
        self._acked_fences: dict[int, list[int]] = {}
        driver = (
            _RebalanceDriver(self, self.rebalance) if self.rebalance is not None else None
        )
        registry = self.registry
        if registry is not None:
            for sink in self.sinks:
                bind = getattr(sink, "bind_registry", None)
                if bind is not None:
                    bind(registry)
        n_packets = 0
        stream_started = drain_started = started
        try:
            for worker in workers:
                worker.start()
            stream_started = perf_counter()
            if self.transport in ("block", "shm"):
                # Columnar path: the source yields struct-of-arrays blocks
                # (native fast paths for traces and pcap files), the router
                # hashes once per unique flow, and what crosses the process
                # boundary is array buffers -- no per-packet pickling.  On
                # the shm transport the buffers do not even cross: they are
                # packed into the shard's ring slots (several sub-blocks per
                # slot) and read in place.
                if self.transport == "shm":
                    self._batchers = [
                        _ShmBatcher(self, worker, batch_slots=self.shm_batch_slots)
                        for worker in workers
                    ]
                    batchers = self._batchers
                    send_block = lambda worker, sub: batchers[worker.shard_id].add(sub)
                else:
                    send_block = lambda worker, sub: self._send(worker, ("block", sub))
                blocks = iter_blocks(self.source, self.chunk_size)
                if registry is not None:
                    blocks = registry.timed_iter(blocks, "source_read")
                for block in blocks:
                    n_packets += len(block)
                    if driver is not None:
                        driver.observe_block(block)
                    if registry is not None:
                        span = perf_counter()
                        parts = self.router.partition_block(block)
                        registry.time_stage("router_partition", span)
                        span = perf_counter()
                        for shard_id, sub_block in parts:
                            send_block(workers[shard_id], sub_block)
                        registry.time_stage("forward_push", span)
                        registry.inc("qoe_router_blocks_total")
                        registry.inc("qoe_router_packets_total", len(block))
                    else:
                        for shard_id, sub_block in self.router.partition_block(block):
                            send_block(workers[shard_id], sub_block)
                    # Drain whatever the workers produced so far: estimates
                    # reach the sinks while the run is in flight (live
                    # scrapes work) and parent memory stays O(in-flight),
                    # not O(all estimates of the capture).
                    self._pump()
                    if driver is not None:
                        # Migrations cut between blocks: every packet of the
                        # block is routed (or slot-buffered) before any flow
                        # of it can move.
                        driver.tick()
                if self._batchers is not None:
                    for batcher in self._batchers:
                        batcher.flush()
            else:
                self._buffers = buffers = [[] for _ in range(self.n_workers)]
                for packet in self.source:
                    n_packets += 1
                    if driver is not None:
                        driver.observe_packet(packet)
                    shard_id = self.router.shard_of(packet)
                    buffer = buffers[shard_id]
                    buffer.append(packet)
                    if len(buffer) >= self.chunk_size:
                        self._send(workers[shard_id], ("chunk", buffer))
                        buffers[shard_id] = []
                        self._pump()
                        if driver is not None:
                            driver.tick()
                for shard_id, buffer in enumerate(buffers):
                    if buffer:
                        self._send(workers[shard_id], ("chunk", buffer))
            drain_started = perf_counter()
            for worker in workers:
                self._send(worker, ("stop",))
            self._drain_until_done()
        finally:
            # Merge whatever arrived, close the caller's sinks exactly once,
            # and never leave worker processes (or their queue feeder
            # threads) behind to block interpreter exit.  Shared-memory
            # rings are unlinked here unconditionally -- normal exit, abort,
            # and worker death all reclaim the OS segments -- and the
            # process/segment cleanup must run even when a caller's sink
            # raises again out of fan_in.close().
            try:
                fan_in.close()
            finally:
                for worker in workers:
                    worker.terminate()
                    worker.join(timeout=5.0)
                    worker.release_queues()
                for ring in rings:
                    ring.close()
                    ring.unlink()
                out_queue.cancel_join_thread()
                out_queue.close()
        self.shard_stats = [stats if stats is not None else {} for stats in self._stats]
        if self._batchers is not None:
            for stats, batcher in zip(self.shard_stats, self._batchers):
                forward = batcher.stats()
                stats.setdefault("transport", {})["forward"] = forward
                if registry is not None:
                    # The parent produced into the forward rings, so it owns
                    # these counters; the reverse direction arrived with each
                    # shard's done delta.  Together the registry mirrors
                    # MonitorReport.transport exactly.
                    ingest_transport_stats(
                        registry, forward, "forward", batcher._worker.shard_id
                    )
        transport = self._aggregate_transport()
        if self.rebalance is not None:
            transport["rebalance"] = {"migrations": len(self.migrations)}
        finished = perf_counter()
        timing = {
            "wall_time_s": finished - started,
            "setup_s": stream_started - started,
            "stream_s": drain_started - stream_started,
            "drain_s": finished - drain_started,
        }
        return MonitorReport(
            n_packets=n_packets,
            n_estimates=fan_in.records_released,
            n_flows=sum(stats.get("n_flows", 0) for stats in self.shard_stats),
            n_evicted_flows=sum(stats.get("n_evicted_flows", 0) for stats in self.shard_stats),
            wall_time_s=finished - started,
            transport=transport,
            timing=timing,
            metrics=self.metrics(),
            shard_loads=tuple(load if load is not None else {} for load in self.shard_loads),
            migration=summarize_migrations(self.migrations),
        )

    # -- observability ---------------------------------------------------------

    def metrics(self) -> dict:
        """The fleet metrics snapshot (``{}`` when observability is off).

        Callable mid-run (the health surface a scraper reads, via
        :func:`~repro.obs.render.render_prometheus`) or after :meth:`run`,
        when the same snapshot also rides ``MonitorReport.metrics``.
        Per-shard load gauges are synced from the latest worker telemetry at
        snapshot time.
        """
        if self.registry is None:
            return {}
        for shard_id, load in enumerate(self.shard_loads):
            if not load:
                continue
            for key in ("live_flows", "buffered_packets", "open_windows"):
                value = load.get(key)
                if value is not None:
                    self.registry.set_gauge(
                        f"qoe_shard_{key}", value, (("shard", str(shard_id)),)
                    )
        return self.registry.snapshot()

    # -- live migration --------------------------------------------------------

    def _migrate(self, flow, dst: int) -> None:
        """Synchronously re-home one canonical flow pair (stop-and-copy).

        The cut happens between routed blocks: the source shard first
        receives everything already routed to it (its batcher / buffer is
        flushed ahead of the control message on the same FIFO queue), drains
        the pair into snapshots, and replies.  A fan-in fence then covers
        the in-flight windows until the destination has restored the pair
        and reported a fresh watermark -- see ``_lift_fences``.  The router
        overlay is updated last, so every packet routed before the cut went
        to the old home and every one after goes to the new.
        """
        if not 0 <= dst < self.n_workers:
            raise ValueError(f"migration dst {dst!r} out of range for {self.n_workers} shards")
        canonical = flow.bidirectional()[0]
        src = self.router.shard_of_key(canonical)
        if src == dst or self._done[src] or self._done[dst]:
            return
        epoch = self.router.next_epoch()
        started = perf_counter()
        if self._batchers is not None:
            self._batchers[src].flush()
        if self._buffers is not None and self._buffers[src]:
            self._send(self._workers[src], ("chunk", self._buffers[src]))
            self._buffers[src] = []
        self._send(self._workers[src], ("migrate_out", canonical, epoch))
        parts, bound, counted = self._await_migration(src, epoch)
        if parts and bound is not None:
            self._fan_in.add_fence(epoch, bound)
            self._live_fences.add(epoch)
        self._send(self._workers[dst], ("migrate_in", canonical, epoch, parts, counted))
        self.router.set_override(canonical, dst)
        latency_s = perf_counter() - started
        self.migrations.append(
            {
                "epoch": epoch,
                "flow": canonical,
                "src": src,
                "dst": dst,
                "latency_s": latency_s,
            }
        )
        if self.registry is not None:
            self.registry.inc("qoe_migrations_total")
            self.registry.observe_stage("migration_cut", latency_s)

    def _await_migration(self, src: int, epoch: int) -> tuple:
        """Pump worker output until shard ``src``'s ``migrated`` reply lands.

        Keeps handling interleaved messages (est tokens free return-ring
        slots, so the drain cannot deadlock) and surfaces a worker death
        instead of hanging.
        """
        while epoch not in self._migrated:
            try:
                message = self._out_queue.get(timeout=0.1)
            except queue_module.Empty:
                worker = self._workers[src]
                if not worker.alive and not self._done[src]:
                    self._pump()
                    if epoch in self._migrated:
                        break
                    # The queue timeout is incidental; worker death is the
                    # real cause, so don't chain the Empty.
                    raise RuntimeError(
                        f"shard worker {src} died (exit code "
                        f"{worker.process.exitcode}) during migration epoch {epoch}"
                    ) from None
                continue
            self._handle(message)
        return self._migrated.pop(epoch)

    def _lift_fences(self, shard_id: int, low_watermark: float | None) -> None:
        """Lift fences whose destination shard reported a post-restore bound.

        A migration's fence outlives its ``migrate_ack``: the destination's
        *recorded* fan-in watermark predates the restore and may exceed the
        migrated flow's pending windows, so the fence holds until the
        shard's first watermark computed with the flow live again.  That
        watermark is the one sanctioned regression -- it is installed
        verbatim (``rebase_watermark``) and only then are the fences
        dropped.

        Called *after* the batch carrying ``low_watermark`` has been
        accepted: the batch itself may contain windows below its trailing
        watermark (legal -- the watermark bounds *future* emissions), and
        lifting the fence first would let the release threshold pass items
        that are still in the message being handled.  Accepting first is
        safe because the fence keeps capping the threshold throughout the
        accept, stale recorded watermark or not.
        """
        if low_watermark is None:
            return
        epochs = self._acked_fences.pop(shard_id, None)
        if not epochs:
            return
        self._fan_in.rebase_watermark(shard_id, low_watermark)
        for epoch in epochs:
            self._live_fences.discard(epoch)
            self._fan_in.clear_fence(epoch)

    def _clear_fences(self, shard_id: int) -> None:
        """Drop a finishing shard's pending fences: its flush has arrived."""
        for epoch in self._acked_fences.pop(shard_id, ()):
            self._live_fences.discard(epoch)
            self._fan_in.clear_fence(epoch)

    # -- internals -------------------------------------------------------------

    def _send(self, worker: ShardWorker, message) -> None:
        """Bounded put that keeps draining output, so back-pressure cannot
        deadlock the parent against a worker blocked on its own output."""
        while True:
            try:
                worker.in_queue.put(message, timeout=0.05)
                return
            except queue_module.Full:
                self._pump()
                if not worker.alive and not self._done[worker.shard_id]:
                    raise RuntimeError(
                        f"shard worker {worker.shard_id} died (exit code "
                        f"{worker.process.exitcode}) before accepting input"
                    ) from None

    def _aggregate_transport(self) -> dict:
        """Fleet-level ring telemetry: per-direction counters over shards.

        Counts sum; high-water marks take the max.  Empty on the queue
        transports (and for the directions that used the queue).
        """
        transport: dict = {}
        for stats in self.shard_stats:
            for direction, counters in stats.get("transport", {}).items():
                agg = transport.setdefault(direction, {})
                for key, value in counters.items():
                    if key in ("occupancy_hwm", "max_segments_per_slot"):
                        agg[key] = max(agg.get(key, 0), value)
                    else:
                        agg[key] = agg.get(key, 0) + value
        return transport

    def _pump(self) -> None:
        """Process every worker message currently available, without blocking."""
        while True:
            try:
                message = self._out_queue.get_nowait()
            except queue_module.Empty:
                return
            self._handle(message)

    def _drain_until_done(self) -> None:
        """Block until every shard reported ``done`` (or a failure surfaces)."""
        while not all(self._done):
            try:
                message = self._out_queue.get(timeout=0.1)
            except queue_module.Empty:
                for worker in self._workers:
                    if not self._done[worker.shard_id] and not worker.alive:
                        # One last non-blocking sweep: the death may have
                        # raced a final message into the queue.
                        self._pump()
                        if not self._done[worker.shard_id]:
                            raise RuntimeError(
                                f"shard worker {worker.shard_id} exited (code "
                                f"{worker.process.exitcode}) without reporting results"
                            ) from None
                continue
            self._handle(message)

    def _absorb_load(self, shard_id: int, load: dict | None) -> None:
        """Record one shard's load telemetry, merging any piggybacked delta.

        The ``metrics`` entry is the worker registry's delta since its last
        shipped message (see ``_WorkerChannel._with_delta``); it is popped
        before the load dict is stored so ``shard_loads`` stays the plain
        rebalancer telemetry it always was.
        """
        if load is None:
            return
        delta = load.pop("metrics", None)
        if delta is not None and self.registry is not None:
            self.registry.merge(delta)
        if load:
            self.shard_loads[shard_id] = load

    def _handle(self, message) -> None:
        kind = message[0]
        if kind == "progress":
            _, shard_id, items, low_watermark, load = message
            self._absorb_load(shard_id, load)
            self._fan_in.accept(shard_id, items, low_watermark)
            self._lift_fences(shard_id, low_watermark)
        elif kind == "est":
            # One filled return-ring slot: decode every tick batch in it
            # (zero-copy views over the slot), feed the fan-in, then recycle
            # the slot.  The pairing mirrors the forward direction: the
            # worker fills the slot before enqueueing the token, and both
            # sides walk slots in token order.
            _, shard_id, load = message
            self._absorb_load(shard_id, load)
            ring = self._return_rings[shard_id]
            segments = ring.pop_segments(timeout=5.0)
            if segments is None:  # pragma: no cover - token/slot pairing guard
                raise RuntimeError(
                    f"shard {shard_id} announced estimates but its return ring is empty"
                )
            try:
                for segment in segments:
                    batch = EstimateBatch.read_from(segment)
                    self._fan_in.accept(shard_id, batch.to_estimates(), batch.low_watermark)
                    self._lift_fences(shard_id, batch.low_watermark)
                    batch = None
            finally:
                segments = None
                try:
                    ring.release()
                except BufferError:
                    # Only reachable when accept() raised with decoded views
                    # still alive in the failing frame; the run's cleanup
                    # reclaims the whole segment regardless.
                    pass
        elif kind == "done":
            _, shard_id, items, stats = message
            delta = stats.pop("metrics", None)
            if delta is not None and self.registry is not None:
                self.registry.merge(delta)
            if stats.get("load") is not None:
                self.shard_loads[shard_id] = stats["load"]
            self._fan_in.accept(shard_id, items)
            self._clear_fences(shard_id)
            self._fan_in.finish(shard_id)
            self._done[shard_id] = True
            self._stats[shard_id] = stats
        elif kind == "migrated":
            _, shard_id, epoch, parts, bound, counted = message
            self._migrated[epoch] = (parts, bound, counted)
        elif kind == "migrate_ack":
            # The pair is live on its new home; its fences now wait for that
            # shard's next watermark (every message after this ack on the
            # same FIFO queue was computed with the restored flows present).
            _, shard_id, epoch = message
            if epoch in self._live_fences:
                self._acked_fences.setdefault(shard_id, []).append(epoch)
        elif kind == "error":
            _, shard_id, trace = message
            raise RuntimeError(f"shard worker {shard_id} failed:\n{trace}")
        else:  # pragma: no cover - protocol guard
            raise RuntimeError(f"unknown worker message {message[0]!r}")
