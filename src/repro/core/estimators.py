"""ML-based QoE estimators (Section 3.2.2 and 3.3).

:class:`IPUDPMLEstimator` trains one random forest per QoE metric on the 14
IP/UDP features; :class:`RTPMLEstimator` does the same on the RTP feature
set.  Frame rate, bitrate and frame jitter are regression targets; resolution
is a classification target over heights (or the Teams low/medium/high bins).

Both estimators share the same interface so the evaluation and benchmark code
can treat all four methods (two heuristics, two ML models) uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.features import (
    IPUDP_FEATURE_NAMES,
    RTP_FEATURE_NAMES,
    extract_ipudp_features,
    extract_rtp_features,
)
from repro.core.media import MediaClassifier
from repro.core.resolution import ResolutionBinner
from repro.core.windows import WindowedTrace
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.rtp.payload_types import PayloadTypeMap
from repro.webrtc.profiles import VCAProfile

__all__ = [
    "REGRESSION_METRICS",
    "ALL_METRICS",
    "MLEstimateRow",
    "BaseMLEstimator",
    "IPUDPMLEstimator",
    "RTPMLEstimator",
]

#: The three regression targets.
REGRESSION_METRICS: tuple[str, ...] = ("frame_rate", "bitrate", "frame_jitter")
#: All four QoE metrics (resolution is a classification target).
ALL_METRICS: tuple[str, ...] = REGRESSION_METRICS + ("resolution",)


@dataclass(frozen=True)
class MLEstimateRow:
    """Per-window predictions from an ML estimator."""

    window_start: float
    frame_rate: float
    bitrate_kbps: float
    frame_jitter_ms: float
    resolution: str | None

    def metric(self, name: str):
        if name == "frame_rate":
            return self.frame_rate
        if name == "bitrate":
            return self.bitrate_kbps
        if name == "frame_jitter":
            return self.frame_jitter_ms
        if name == "resolution":
            return self.resolution
        raise ValueError(f"unknown metric: {name!r}")


@dataclass
class _ForestParams:
    """Hyper-parameters shared by all per-metric forests."""

    n_estimators: int = 30
    max_depth: int | None = 12
    min_samples_leaf: int = 2
    random_state: int = 0


class BaseMLEstimator:
    """Shared fit/predict machinery for the two ML estimators."""

    #: Human-readable feature names, set by subclasses.
    feature_names: tuple[str, ...] = ()

    def __init__(
        self,
        resolution_binner: ResolutionBinner | None = None,
        n_estimators: int = 30,
        max_depth: int | None = 12,
        min_samples_leaf: int = 2,
        random_state: int = 0,
    ) -> None:
        self.resolution_binner = resolution_binner if resolution_binner is not None else ResolutionBinner(None)
        self.params = _ForestParams(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            random_state=random_state,
        )
        self.regressors_: dict[str, RandomForestRegressor] = {}
        self.classifier_: RandomForestClassifier | None = None

    # -- feature extraction (subclass hook) ------------------------------------

    def features_for_window(self, window: WindowedTrace) -> np.ndarray:
        raise NotImplementedError

    def feature_matrix(self, windows: list[WindowedTrace]) -> np.ndarray:
        """Stack per-window feature vectors into a design matrix."""
        if not windows:
            raise ValueError("need at least one window")
        return np.vstack([self.features_for_window(w) for w in windows])

    # -- training ---------------------------------------------------------------

    def _make_regressor(self) -> RandomForestRegressor:
        return RandomForestRegressor(
            n_estimators=self.params.n_estimators,
            max_depth=self.params.max_depth,
            min_samples_leaf=self.params.min_samples_leaf,
            max_features="sqrt",
            random_state=self.params.random_state,
        )

    def _make_classifier(self) -> RandomForestClassifier:
        return RandomForestClassifier(
            n_estimators=self.params.n_estimators,
            max_depth=self.params.max_depth,
            min_samples_leaf=self.params.min_samples_leaf,
            max_features="sqrt",
            random_state=self.params.random_state,
        )

    def fit(self, X: np.ndarray, targets: dict[str, np.ndarray]) -> "BaseMLEstimator":
        """Train one model per metric present in ``targets``.

        ``targets`` maps metric names ("frame_rate", "bitrate", "frame_jitter",
        "resolution") to per-window target arrays aligned with the rows of
        ``X``.  Resolution targets are class labels (already binned).
        """
        X = np.asarray(X, dtype=float)
        for metric, y in targets.items():
            if metric == "resolution":
                classifier = self._make_classifier()
                classifier.fit(X, np.asarray(y))
                self.classifier_ = classifier
            elif metric in REGRESSION_METRICS:
                regressor = self._make_regressor()
                regressor.fit(X, np.asarray(y, dtype=float))
                self.regressors_[metric] = regressor
            else:
                raise ValueError(f"unknown metric: {metric!r}")
        return self

    def fit_windows(self, windows: list[WindowedTrace], targets: dict[str, np.ndarray]) -> "BaseMLEstimator":
        return self.fit(self.feature_matrix(windows), targets)

    # -- prediction --------------------------------------------------------------

    def _check_fitted(self, metric: str) -> None:
        if metric == "resolution":
            if self.classifier_ is None:
                raise RuntimeError("resolution model is not fitted")
        elif metric not in self.regressors_:
            raise RuntimeError(f"model for metric {metric!r} is not fitted")

    def predict_metric(self, X: np.ndarray, metric: str) -> np.ndarray:
        """Predict one metric for a design matrix."""
        self._check_fitted(metric)
        X = np.asarray(X, dtype=float)
        if metric == "resolution":
            assert self.classifier_ is not None
            return self.classifier_.predict(X)
        predictions = self.regressors_[metric].predict(X)
        # QoE metrics are non-negative by definition.
        return np.maximum(predictions, 0.0)

    def predict_rows(self, X: np.ndarray, window_starts) -> list[MLEstimateRow]:
        """Per-window estimate rows for a design matrix.

        The single metric-to-field mapping shared by the batch
        (:meth:`predict_windows`) and streaming
        (:meth:`~repro.core.streaming.StreamingQoEPipeline`) paths: unfitted
        regression metrics become NaN, resolution ``None`` without a
        classifier.
        """
        columns: dict[str, np.ndarray] = {}
        for metric in self.regressors_:
            columns[metric] = self.predict_metric(X, metric)
        if self.classifier_ is not None:
            columns["resolution"] = self.predict_metric(X, "resolution")
        rows = []
        for i, window_start in enumerate(window_starts):
            rows.append(
                MLEstimateRow(
                    window_start=window_start,
                    frame_rate=float(columns["frame_rate"][i]) if "frame_rate" in columns else float("nan"),
                    bitrate_kbps=float(columns["bitrate"][i]) if "bitrate" in columns else float("nan"),
                    frame_jitter_ms=float(columns["frame_jitter"][i]) if "frame_jitter" in columns else float("nan"),
                    resolution=str(columns["resolution"][i]) if "resolution" in columns else None,
                )
            )
        return rows

    def predict_windows(self, windows: list[WindowedTrace]) -> list[MLEstimateRow]:
        """Full per-window estimates for every fitted metric."""
        X = self.feature_matrix(windows)
        return self.predict_rows(X, [window.start for window in windows])

    # -- interpretation -----------------------------------------------------------

    def feature_importances(self, metric: str) -> dict[str, float]:
        """Impurity-based feature importances for one metric's model."""
        self._check_fitted(metric)
        if metric == "resolution":
            assert self.classifier_ is not None
            importances = self.classifier_.feature_importances_
        else:
            importances = self.regressors_[metric].feature_importances_
        assert importances is not None
        return dict(zip(self.feature_names, importances.tolist()))

    def top_features(self, metric: str, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` most important features for ``metric`` (Figures 5, 7, 9)."""
        importances = self.feature_importances(metric)
        ranked = sorted(importances.items(), key=lambda item: item[1], reverse=True)
        return ranked[:k]


class IPUDPMLEstimator(BaseMLEstimator):
    """Random forests over the 14 IP/UDP features (the paper's IP/UDP ML)."""

    feature_names = IPUDP_FEATURE_NAMES

    def __init__(self, classifier: MediaClassifier | None = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.media_classifier = classifier if classifier is not None else MediaClassifier()

    @classmethod
    def for_profile(cls, profile: VCAProfile, **kwargs) -> "IPUDPMLEstimator":
        from repro.core.resolution import binner_for_vca

        return cls(
            classifier=MediaClassifier(video_size_threshold=profile.video_size_threshold),
            resolution_binner=binner_for_vca(profile.name),
            **kwargs,
        )

    def features_for_window(self, window: WindowedTrace) -> np.ndarray:
        return extract_ipudp_features(window, classifier=self.media_classifier)


class RTPMLEstimator(BaseMLEstimator):
    """Random forests over RTP-header features plus flow statistics."""

    feature_names = RTP_FEATURE_NAMES

    def __init__(self, payload_types: PayloadTypeMap, **kwargs) -> None:
        super().__init__(**kwargs)
        self.payload_types = payload_types

    @classmethod
    def for_profile(cls, profile: VCAProfile, environment: str = "lab", **kwargs) -> "RTPMLEstimator":
        from repro.core.resolution import binner_for_vca

        return cls(
            payload_types=profile.payload_types_for(environment),
            resolution_binner=binner_for_vca(profile.name),
            **kwargs,
        )

    def features_for_window(self, window: WindowedTrace) -> np.ndarray:
        return extract_rtp_features(window, self.payload_types)
