"""Shared fixtures for the benchmark/experiment harness.

Each ``benchmarks/test_*.py`` file regenerates one of the paper's tables or
figures (see DESIGN.md for the experiment index).  The datasets are simulated
once per pytest session at a reduced scale (minutes, not the paper's weeks of
collection); the *shape* of each result -- method ordering, over/under
estimation, trends across swept parameters -- is what is being reproduced.

Every benchmark writes its rendered table/figure to
``benchmarks/results/<name>.txt`` and prints it, so ``pytest benchmarks/
--benchmark-only`` leaves a readable artefact per experiment.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

from repro.core.evaluation import EvaluationDataset
from repro.datasets.lab import LabDatasetConfig, build_lab_dataset
from repro.datasets.realworld import RealWorldConfig, build_real_world_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale of the benchmark datasets (kept small so the whole harness runs in
#: minutes; raise these to approach the paper's data volumes).
LAB_CALLS_PER_VCA = 6
LAB_CALL_DURATION_S = 25
REAL_WORLD_CALLS_PER_VCA = 6
N_ESTIMATORS = 15


def enforced_floor(env_var: str, multicore_default: float) -> float:
    """The perf floor a benchmark will actually enforce, derived once.

    Floors gate on parallel hardware: a transport or scaling win only
    materializes when producer and consumer genuinely overlap, so on a
    single-core runner the default collapses to ``0.0`` (numbers are
    recorded, nothing is asserted).  The environment variable always wins --
    CI smoke runs set it to ``0`` explicitly.  Benchmarks must record *this*
    value in their JSON artifacts (not the multicore default and not a
    hard-coded ``0.0``), so the perf trajectory stays interpretable: a
    reader can tell an enforced 1.5x from a vacuous one.
    """
    default = multicore_default if (os.cpu_count() or 1) > 1 else 0.0
    return float(os.environ.get(env_var, default))


def save_artifact(name: str, text: str) -> Path:
    """Write a rendered table/figure to the results directory and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n", file=sys.stderr)
    return path


@pytest.fixture(scope="session")
def lab_calls():
    """In-lab dataset: ``{vca: [CallResult, ...]}`` under NDT-driven conditions."""
    config = LabDatasetConfig(
        calls_per_vca=LAB_CALLS_PER_VCA, call_duration_s=LAB_CALL_DURATION_S, seed=7
    )
    return build_lab_dataset(config)


@pytest.fixture(scope="session")
def real_world_calls():
    """Real-world dataset: ``{vca: [CallResult, ...]}`` from the household models."""
    config = RealWorldConfig(calls_per_vca=REAL_WORLD_CALLS_PER_VCA, seed=23)
    return build_real_world_dataset(config)


@pytest.fixture(scope="session")
def lab_datasets(lab_calls):
    """Per-VCA window-level evaluation datasets built from the in-lab calls."""
    return {vca: EvaluationDataset.from_calls(calls) for vca, calls in lab_calls.items()}


@pytest.fixture(scope="session")
def real_world_datasets(real_world_calls):
    """Per-VCA window-level evaluation datasets built from the real-world calls."""
    return {vca: EvaluationDataset.from_calls(calls) for vca, calls in real_world_calls.items()}
