"""End-to-end call simulation.

``simulate_call`` wires a :class:`~repro.webrtc.sender.VCASender`, an
:class:`~repro.netem.link.EmulatedLink` and a
:class:`~repro.webrtc.receiver.Receiver` into a second-by-second feedback
loop and returns the two artefacts the paper's pipeline consumes for every
call: the packet trace captured at the receiver's access link and the
per-second ground-truth QoE log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.net.packet import MediaType, Packet
from repro.net.trace import PacketTrace
from repro.netem.conditions import ConditionSchedule
from repro.netem.link import EmulatedLink, LinkReport
from repro.webrtc.profiles import VCAProfile, get_profile
from repro.webrtc.rate_control import FeedbackReport
from repro.webrtc.receiver import Receiver
from repro.webrtc.sender import VCASender
from repro.webrtc.stats import GroundTruthLog

__all__ = ["SessionConfig", "CallResult", "simulate_call"]


@dataclass(frozen=True)
class SessionConfig:
    """Configuration of one simulated 2-party call."""

    vca: str
    duration_s: int = 30
    environment: str = "lab"
    seed: int | None = None
    call_id: str = "call-0"
    client_ip: str = "10.0.0.1"
    remote_ip: str = "192.0.2.10"
    client_port: int = 50000
    remote_port: int = 3478
    #: Number of participants; the evaluation only uses 2-party calls but the
    #: hook is kept for the paper's future-work discussion.
    participants: int = 2

    def __post_init__(self) -> None:
        if self.duration_s < 2:
            raise ValueError("duration_s must be at least 2 seconds")
        if self.environment not in ("lab", "real_world"):
            raise ValueError(f"unknown environment: {self.environment!r}")
        if self.participants != 2:
            raise ValueError("only 2-party calls are supported (paper Section 7)")


@dataclass
class CallResult:
    """Everything the pipeline needs about one simulated call."""

    config: SessionConfig
    profile: VCAProfile
    trace: PacketTrace
    ground_truth: GroundTruthLog
    schedule: ConditionSchedule
    link_reports: list[LinkReport] = field(default_factory=list)
    target_bitrates_kbps: list[float] = field(default_factory=list)

    @property
    def vca(self) -> str:
        return self.config.vca

    @property
    def duration_s(self) -> int:
        return self.config.duration_s


def simulate_call(config: SessionConfig, schedule: ConditionSchedule) -> CallResult:
    """Simulate one call of ``config.duration_s`` seconds under ``schedule``.

    The loop advances one second at a time: the sender emits that second's
    packets at its current target bitrate, the emulated link delivers (or
    drops/delays) them, the receiver reassembles frames and records ground
    truth, and the resulting loss/delay/rate feedback drives the sender's rate
    controller for the next second -- the same closed loop a real WebRTC call
    runs, at RTCP-feedback granularity.
    """
    profile = get_profile(config.vca)
    rng = np.random.default_rng(config.seed)

    sender = VCASender(
        profile,
        rng,
        environment=config.environment,
        src_ip=config.remote_ip,
        dst_ip=config.client_ip,
        src_port=config.remote_port,
        dst_port=config.client_port,
    )
    link = EmulatedLink(schedule.repeated_to(config.duration_s), rng=rng)
    receiver = Receiver(vca=config.vca, call_id=config.call_id)

    captured: list[Packet] = []
    link_reports: list[LinkReport] = []
    target_bitrates: list[float] = []
    lost_video_packets: list[Packet] = []

    # Call setup: DTLS/STUN handshake crosses the link like any other traffic.
    handshake_delivered, handshake_report = link.transmit(sender.control_handshake(0.0))
    captured.extend(handshake_delivered)
    link_reports.append(handshake_report)

    for second in range(config.duration_s):
        sent = sender.generate_second(second, lost_video_packets=lost_video_packets)
        target_bitrates.append(sent.target_bitrate_kbps)

        delivered, report = link.transmit(sent.packets)
        link_reports.append(report)
        captured.extend(delivered)
        receiver.process(delivered)

        # Which video packets were lost this second (NACKed and retransmitted
        # over the RTX stream next second).
        delivered_seq = {
            p.rtp.sequence_number
            for p in delivered
            if p.media_type is MediaType.VIDEO and p.rtp is not None
        }
        lost_video_packets = [
            p
            for p in sent.packets
            if p.media_type is MediaType.VIDEO
            and p.rtp is not None
            and p.rtp.sequence_number not in delivered_seq
        ]

        # Receiver feedback for the rate controller.
        delivered_bytes = sum(p.payload_size for p in delivered)
        condition = link.condition_at(float(second))
        queue_delay_ms = max(0.0, report.mean_delay_ms - condition.delay_ms)
        feedback = FeedbackReport(
            loss_fraction=min(1.0, report.loss_fraction),
            receive_rate_kbps=delivered_bytes * 8.0 / 1000.0,
            queue_delay_ms=queue_delay_ms,
            rtt_ms=2.0 * condition.delay_ms + queue_delay_ms,
        )
        sender.apply_feedback(feedback)

    trace = PacketTrace(captured, vca=config.vca)
    ground_truth = receiver.build_log(config.duration_s, start_time=0.0)
    ground_truth.metadata.update(
        {
            "environment": config.environment,
            "seed": config.seed,
            "mean_throughput_kbps": schedule.mean_throughput_kbps(),
            "mean_loss_rate": schedule.mean_loss_rate(),
            "mean_delay_ms": schedule.mean_delay_ms(),
        }
    )
    return CallResult(
        config=config,
        profile=profile,
        trace=trace,
        ground_truth=ground_truth,
        schedule=schedule,
        link_reports=link_reports,
        target_bitrates_kbps=target_bitrates,
    )
