"""Scale-out workflow: shard a many-flow capture across N worker processes.

``streaming_monitor.py`` shows one engine handling a handful of concurrent
sessions.  A vantage point in front of thousands of households needs more
than one core, and the per-flow streams are independent by design -- so the
cluster layer simply partitions flows across worker processes:

* a :class:`repro.FlowShardRouter` hash-routes packets by canonical 5-tuple,
  so every packet of a call lands on the same worker;
* each worker rebuilds the pipeline from the ``QoEPipeline.save`` payload
  (the same file a deployment site would load) and runs its own streaming
  engine, batching ML inference across flows whose windows close in the
  same tick;
* a :class:`repro.FanInSink` merges the per-shard estimate streams back
  into one deterministically-ordered stream, feeding ordinary sinks that
  never learn the run was sharded.

The output is estimate-for-estimate identical to the single-process
``QoEMonitor`` -- swap ``ShardedQoEMonitor(n_workers=...)`` in and nothing
downstream changes.  Where the platform supports it, block payloads ride
zero-copy shared-memory rings (``transport="shm"``); the pickling queue
transport is the portable fallback with identical output.

Run with:  python examples/sharded_monitor.py [n_workers]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import QoEPipeline, ShardedQoEMonitor, SummarySink
from repro.cluster import shm_available
from repro.net.packet import IPv4Header, Packet, UDPHeader


def synthetic_vantage_trace(n_flows: int = 12, duration_s: float = 20.0) -> list[Packet]:
    """Interleaved VCA-like downlinks for ``n_flows`` concurrent households.

    Each flow sends ~25 fps video bursts of 2-4 fragments; a third of the
    flows degrade halfway through (lower rate, smaller frames), which the
    per-flow summaries should surface.
    """
    flows: list[list[Packet]] = []
    for index in range(n_flows):
        rng = np.random.default_rng(1000 + index)
        ip = IPv4Header(src="192.0.2.10", dst=f"10.0.{index // 250}.{index % 250 + 1}")
        udp = UDPHeader(src_port=3478, dst_port=50000 + index)
        degraded = index % 3 == 0
        packets: list[Packet] = []
        t = float(rng.uniform(0.0, 0.05))
        while t < duration_s:
            slow = degraded and t > duration_s / 2
            size = int(rng.integers(300, 520)) if slow else int(rng.integers(700, 1200))
            for i in range(int(rng.integers(2, 5))):
                packets.append(Packet(timestamp=t + i * 0.0008, ip=ip, udp=udp, payload_size=size))
            t += float(rng.normal(0.09 if slow else 0.04, 0.004))
        flows.append(packets)
    return sorted((p for flow in flows for p in flow), key=lambda p: p.timestamp)


def main() -> None:
    n_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    packets = synthetic_vantage_trace()
    pipeline = QoEPipeline.for_vca("teams")  # heuristic mode; train + save for ML

    transport = "shm" if shm_available() else "block"
    summary = SummarySink(degraded_fps_threshold=18.0)
    monitor = ShardedQoEMonitor(
        pipeline,
        source=iter(packets),
        sinks=summary,
        n_workers=n_workers,
        transport=transport,
    )
    print(
        f"Sharding {len(packets)} packets across {n_workers} workers "
        f"(transport={transport!r}) ...\n"
    )
    report = monitor.run()

    print(f"Per-shard load (router = CRC-32 of canonical 5-tuple, {n_workers} shards):")
    for shard_id, stats in enumerate(monitor.shard_stats):
        print(
            f"  shard {shard_id}: {stats.get('n_flows', 0):3d} flows  "
            f"{stats.get('n_packets', 0):6d} packets"
        )

    print("\nMerged per-flow summary (deterministic fan-in order):")
    for flow, stats in sorted(summary.summary().items(), key=lambda kv: kv[0].dst_port):
        flag = "  <-- degraded" if stats.degraded_fraction > 0.2 else ""
        print(
            f"  {flow.dst:<11} :{flow.dst_port}  windows={stats.windows:3d}  "
            f"mean_fps={stats.mean_frame_rate:5.1f}  "
            f"degraded={stats.degraded_fraction:5.1%}{flag}"
        )

    print(
        f"\nProcessed {report.packets_consumed} packets / {report.flows_seen} flows "
        f"in {report.wall_time_s:.2f}s ({report.packets_per_s:,.0f} packets/s); "
        f"{report.n_estimates} estimates."
    )
    print(
        "Every estimate is identical to a single-process QoEMonitor run -- "
        "only the wall-clock changes with n_workers."
    )


if __name__ == "__main__":
    main()
