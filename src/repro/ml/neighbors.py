"""k-nearest-neighbour regressors/classifiers.

Used as additional classical baselines in the ablation benchmarks (the paper
mentions experimenting with "several classical supervised ML models").
"""

from __future__ import annotations

import numpy as np

__all__ = ["KNeighborsRegressor", "KNeighborsClassifier"]


class _BaseKNN:
    def __init__(self, n_neighbors: int = 5) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaseKNN":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError("X and y have inconsistent lengths")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._X = X
        self._y = y
        return self

    def _neighbor_indices(self, X: np.ndarray) -> np.ndarray:
        assert self._X is not None
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        # Squared euclidean distances, (n_query, n_train).
        d2 = (
            np.sum(X**2, axis=1)[:, None]
            - 2.0 * X @ self._X.T
            + np.sum(self._X**2, axis=1)[None, :]
        )
        k = min(self.n_neighbors, len(self._X))
        return np.argsort(d2, axis=1)[:, :k]

    def _check_fitted(self) -> None:
        if self._X is None:
            raise RuntimeError(
                f"{type(self).__name__} instance is not fitted; call fit() first"
            )


class KNeighborsRegressor(_BaseKNN):
    """Mean of the targets of the k nearest training samples."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        assert self._y is not None
        idx = self._neighbor_indices(X)
        return self._y[idx].astype(float).mean(axis=1)


class KNeighborsClassifier(_BaseKNN):
    """Majority vote of the labels of the k nearest training samples."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        assert self._y is not None
        idx = self._neighbor_indices(X)
        classes = np.unique(self._y)
        class_pos = {c: i for i, c in enumerate(classes)}
        predictions = []
        for row in idx:
            counts = np.zeros(len(classes), dtype=int)
            for label in self._y[row]:
                counts[class_pos[label]] += 1
            predictions.append(classes[int(np.argmax(counts))])
        return np.array(predictions)
