"""Receiver model: frame reassembly, jitter buffering and per-second statistics.

The receiver is the *application*, so unlike the network-side estimators it
has full knowledge of frame boundaries (via RTP timestamps / the simulator's
frame annotations).  It reassembles frames from delivered packets, plays them
out through the jitter buffer, and produces the per-second ground-truth QoE
log the paper obtains from ``webrtc-internals``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.packet import MediaType, Packet
from repro.webrtc.jitter_buffer import JitterBuffer, PlayoutEvent
from repro.webrtc.stats import GroundTruthLog, PerSecondStats

__all__ = ["Receiver", "FrameAssemblyState"]


@dataclass
class FrameAssemblyState:
    """Packets received so far for one in-flight frame."""

    frame_id: int
    expected_packets: int
    height: int
    received_packets: int = 0
    received_bytes: int = 0
    first_arrival: float = 0.0
    last_arrival: float = 0.0

    @property
    def complete(self) -> bool:
        return self.received_packets >= self.expected_packets


class Receiver:
    """Consumes delivered packets and produces ground-truth statistics."""

    #: Frames still incomplete this long after their first packet are abandoned
    #: (long enough for one NACK/RTX recovery round trip).
    FRAME_TIMEOUT_S = 1.5

    def __init__(self, vca: str, call_id: str, jitter_buffer: JitterBuffer | None = None) -> None:
        self.vca = vca
        self.call_id = call_id
        self.jitter_buffer = jitter_buffer if jitter_buffer is not None else JitterBuffer()
        self._in_flight: dict[int, FrameAssemblyState] = {}
        self._playouts: list[PlayoutEvent] = []
        self._video_byte_events: list[tuple[float, int]] = []
        self._last_height = 0

    # -- packet processing ----------------------------------------------------

    def process(self, packets: list[Packet]) -> list[PlayoutEvent]:
        """Process a batch of delivered packets (in arrival order)."""
        events: list[PlayoutEvent] = []
        for packet in sorted(packets, key=lambda p: p.timestamp):
            events.extend(self._process_one(packet))
            self._expire_stale_frames(packet.timestamp)
        return events

    def _process_one(self, packet: Packet) -> list[PlayoutEvent]:
        # Frame reassembly consumes original video packets and RTX
        # retransmissions that repair them (both carry a frame id); audio,
        # keep-alives and control packets are ignored.
        if packet.frame_id is None or not (
            packet.media_type is MediaType.VIDEO or packet.media_type is MediaType.VIDEO_RTX
        ):
            return []
        # webrtc-internals counts application (codec) bytes, not wire bytes.
        app_bytes = int(packet.metadata.get("app_bytes", packet.media_payload_size))
        self._video_byte_events.append((packet.timestamp, app_bytes))

        state = self._in_flight.get(packet.frame_id)
        if state is None:
            state = FrameAssemblyState(
                frame_id=packet.frame_id,
                expected_packets=int(packet.metadata.get("frame_packets", 1)),
                height=int(packet.metadata.get("height", 0)),
                first_arrival=packet.timestamp,
            )
            self._in_flight[packet.frame_id] = state
        state.received_packets += 1
        state.received_bytes += packet.media_payload_size
        state.last_arrival = max(state.last_arrival, packet.timestamp)

        if not state.complete:
            return []
        del self._in_flight[packet.frame_id]
        self._last_height = state.height or self._last_height
        event = self.jitter_buffer.submit(
            frame_id=state.frame_id,
            completion_time=state.last_arrival,
            size_bytes=state.received_bytes,
            height=state.height,
        )
        self._playouts.append(event)
        return [event]

    def _expire_stale_frames(self, now: float) -> None:
        stale = [
            frame_id
            for frame_id, state in self._in_flight.items()
            if now - state.first_arrival > self.FRAME_TIMEOUT_S
        ]
        for frame_id in stale:
            del self._in_flight[frame_id]

    # -- statistics -----------------------------------------------------------

    @property
    def playout_events(self) -> list[PlayoutEvent]:
        return list(self._playouts)

    def frames_decoded(self) -> int:
        return len(self._playouts)

    def build_log(self, duration_s: int, start_time: float = 0.0) -> GroundTruthLog:
        """Per-second ground-truth log covering ``duration_s`` seconds.

        Frame rate counts frames whose *playout* time falls in the second (the
        webrtc-internals framesReceived/s counter); frame jitter is the
        standard deviation of inter-playout gaps within the second; bitrate is
        the video payload bytes received in the second; resolution is the most
        common height among the frames played in the second (carrying the last
        known height through seconds with no frames).
        """
        if duration_s < 1:
            raise ValueError("duration_s must be >= 1")
        log = GroundTruthLog(vca=self.vca, call_id=self.call_id, start_time=start_time)

        playouts_by_second: dict[int, list[PlayoutEvent]] = {}
        for event in self._playouts:
            second = int(event.playout_time - start_time)
            playouts_by_second.setdefault(second, []).append(event)

        bytes_by_second: dict[int, int] = {}
        for timestamp, size in self._video_byte_events:
            second = int(timestamp - start_time)
            bytes_by_second[second] = bytes_by_second.get(second, 0) + size

        last_height = 0
        previous_playout: float | None = None
        for second in range(duration_s):
            events = sorted(playouts_by_second.get(second, []), key=lambda e: e.playout_time)
            frame_count = len(events)

            # Inter-frame gaps within the second, seeded with the gap back to
            # the last frame of the previous second so jitter is continuous.
            gaps: list[float] = []
            for event in events:
                if previous_playout is not None:
                    gaps.append(event.playout_time - previous_playout)
                previous_playout = event.playout_time
            jitter_ms = float(np.std(gaps) * 1000.0) if len(gaps) >= 2 else 0.0

            if events:
                heights = [e.height for e in events if e.height > 0]
                if heights:
                    values, counts = np.unique(heights, return_counts=True)
                    last_height = int(values[np.argmax(counts)])

            bytes_received = bytes_by_second.get(second, 0)
            log.append(
                PerSecondStats(
                    second=second,
                    frames_received=float(frame_count),
                    bitrate_kbps=bytes_received * 8.0 / 1000.0,
                    frame_jitter_ms=jitter_ms,
                    frame_height=last_height,
                )
            )
        return log
