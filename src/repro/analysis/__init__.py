"""Analysis and reporting helpers.

Everything needed to regenerate the paper's tables and figures as text:
CDFs (:mod:`repro.analysis.cdf`), box-plot style error summaries and ASCII
tables (:mod:`repro.analysis.reporting`), and the transferability matrices
(:mod:`repro.analysis.transferability`).
"""

from repro.analysis.cdf import empirical_cdf, cdf_table
from repro.analysis.reporting import (
    format_confusion_matrix,
    format_feature_importances,
    format_method_comparison,
    format_series,
    format_table,
)
from repro.analysis.transferability import TransferabilityResult, transferability_table

__all__ = [
    "empirical_cdf",
    "cdf_table",
    "format_table",
    "format_series",
    "format_method_comparison",
    "format_confusion_matrix",
    "format_feature_importances",
    "TransferabilityResult",
    "transferability_table",
]
