"""The shipped tree is detlint-clean: the tier-1 invariant gate.

This is the test that turns nine PRs of contracts into a commit gate: any
change that calls builtin ``hash()`` on repro code, drops an obs guard in a
hot-path module, writes a byte-order-implicit dtype into a codec, or
unfreezes a public config fails here, in seconds, with the rule's name and
rationale -- instead of flaking later in a 4-worker migration test.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools import lint_paths, render_text
from repro.devtools.framework import all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def test_src_repro_is_detlint_clean():
    result = lint_paths([SRC])
    assert result.files_checked > 50, "linted suspiciously few files -- wrong root?"
    assert result.findings == [], "\n" + render_text(result)


def test_suppressions_stay_rare():
    """Suppressions are reasoned exceptions, not an escape hatch.

    If this ceiling is hit legitimately, raise it in the same commit that
    adds the suppression -- the diff review is the point of the ceiling.
    """
    result = lint_paths([SRC])
    assert result.suppressed <= 5


def test_at_least_ten_rules_registered():
    assert len(all_rules()) >= 10
