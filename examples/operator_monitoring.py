"""Operator workflow: train in the lab, monitor pcaps in production.

This mirrors how a network operator would deploy the paper's system:

1. collect labelled calls in a controlled lab (traces + webrtc-internals logs);
2. train one model per VCA;
3. in production, feed raw pcap captures of customer VCA sessions (IP/UDP
   headers only -- RTP is stripped) and flag seconds with degraded QoE.

Run with:  python examples/operator_monitoring.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    ConditionSchedule,
    NetworkCondition,
    PacketTrace,
    QoEPipeline,
    SessionConfig,
    StreamingQoEPipeline,
    build_lab_dataset,
    LabDatasetConfig,
    simulate_call,
)

FPS_ALERT_THRESHOLD = 18.0
BITRATE_ALERT_THRESHOLD_KBPS = 450.0


def capture_customer_session(directory: Path) -> Path:
    """Stand-in for a production capture: a Webex call over a congested link,
    exported as a pcap with RTP headers and any ground truth stripped."""
    conditions = (
        [NetworkCondition(throughput_kbps=2000.0, delay_ms=30.0, jitter_ms=4.0)] * 8
        + [NetworkCondition(throughput_kbps=120.0, delay_ms=150.0, jitter_ms=30.0, loss_rate=0.08)] * 8
        + [NetworkCondition(throughput_kbps=1500.0, delay_ms=35.0, jitter_ms=5.0)] * 8
    )
    call = simulate_call(
        SessionConfig(vca="webex", duration_s=24, seed=7, call_id="customer-042"),
        ConditionSchedule(conditions),
    )
    path = directory / "customer-042.pcap"
    operator_view = PacketTrace(
        [p.without_rtp().without_ground_truth().anonymized() for p in call.trace], vca="webex"
    )
    operator_view.to_pcap(path)
    return path


def main() -> None:
    print("Training the Webex model on lab data ...")
    lab = build_lab_dataset(LabDatasetConfig(calls_per_vca=4, call_duration_s=20, vcas=("webex",), seed=3))
    pipeline = QoEPipeline.for_vca("webex").train(lab["webex"])

    with tempfile.TemporaryDirectory() as tmp:
        pcap_path = capture_customer_session(Path(tmp))
        print(f"Estimating QoE from {pcap_path.name} (IP/UDP headers only) ...\n")

        # Feed the capture through the trained pipeline's streaming engine:
        # packets go in one at a time, per-second estimates come out as each
        # window closes -- the same loop a live deployment would run.
        monitor = StreamingQoEPipeline(pipeline, demux_flows=False)
        trace = PacketTrace.from_pcap(pcap_path, vca="webex")

        alerts = 0
        n_estimates = 0

        def report(estimate) -> None:
            nonlocal alerts, n_estimates
            degraded = (
                estimate.frame_rate < FPS_ALERT_THRESHOLD
                or estimate.bitrate_kbps < BITRATE_ALERT_THRESHOLD_KBPS
            )
            flag = "  <-- degraded QoE" if degraded else ""
            alerts += int(degraded)
            n_estimates += 1
            print(
                f"t={int(estimate.window_start):>3}s  fps={estimate.frame_rate:5.1f}  "
                f"bitrate={estimate.bitrate_kbps:7.0f} kbps  jitter={estimate.frame_jitter_ms:5.1f} ms{flag}"
            )

        for emitted in monitor.process(trace):
            report(emitted.estimate)
        for emitted in monitor.flush():
            report(emitted.estimate)  # the final window(s) held at end of capture

        print(f"\n{alerts} of {n_estimates} seconds flagged as degraded.")
        print("Flags should cluster inside the congestion window injected between t=8s and t=16s.")


if __name__ == "__main__":
    main()
