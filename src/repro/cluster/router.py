"""Deterministic flow -> shard partitioning for the sharded monitor.

The per-flow streams of the engine are fully independent (PR 1 made them
so on purpose), which makes horizontal scale-out a routing problem: send
every packet of a flow to the same worker and N workers behave exactly like
one.  :class:`FlowShardRouter` is that routing function.

Two properties matter and both are load-bearing:

* **Canonical keys.**  Packets are keyed by the *bidirectional* canonical
  form of their 5-tuple (:meth:`~repro.net.flows.FlowKey.bidirectional`), so
  the two unidirectional halves of one call land on the same shard.  The
  engine still demultiplexes them into separate unidirectional streams --
  co-locating them just keeps a future bidirectional feature (RTT, ack
  correlation) shard-local.
* **Stable hashing.**  The shard index comes from CRC-32 over a canonical
  byte encoding of the key, *not* Python's ``hash()``: the builtin string
  hash is salted per process (PYTHONHASHSEED), and worker processes, restarts
  and replicas must all agree where a flow lives.

Assignments are memoized per unidirectional key (an LRU keeps a perpetual
monitor's cache bounded), so steady-state routing is a dict hit; on the
columnar path (:meth:`FlowShardRouter.partition_block`) the hash runs once
per *unique flow* of a block, never once per packet.

Elastic sharding (PR 7) adds a third layer on top: an explicit **overlay
map** of migrated flows, consulted before the memoized base assignment, and
an **epoch counter** stamped onto migration control messages so every
re-homing has a unique generation the fan-in can fence on.  With no
migrations the overlay is empty and routing is byte-for-byte the static
CRC-32 map.
"""

from __future__ import annotations

import zlib
from functools import lru_cache

import numpy as np

from repro.net.block import PacketBlock
from repro.net.flows import FlowKey, five_tuple
from repro.net.packet import Packet

__all__ = ["FlowShardRouter"]

#: Distinct unidirectional keys whose shard assignment is kept memoized.
#: Far above any realistic live-flow count; bounds memory on endless runs.
SHARD_CACHE_SIZE = 1 << 16


class FlowShardRouter:
    """Hash-partition packets onto ``n_shards`` by canonical 5-tuple.

    Stateless-in-effect and deterministic: the same flow maps to the same
    shard in every process, on every run, for a given shard count.  The
    only state is a memo of past answers, which cannot change them.
    """

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
        self.n_shards = n_shards
        #: Migrated flows: unidirectional key -> current home shard.  Both
        #: directions of a migrated call are stored explicitly so the hot
        #: path stays a single dict probe with no canonicalization.
        self._overrides: dict[FlowKey, int] = {}
        #: Monotonic migration generation; stamped onto MIGRATE control
        #: messages so parent and workers agree which re-homing is which.
        self.epoch = 0
        self.base_shard_of_key = lru_cache(maxsize=SHARD_CACHE_SIZE)(self._shard_of_key)

    def _shard_of_key(self, key: FlowKey) -> int:
        """Static shard index of a (unidirectional or canonical) flow key."""
        canonical = key.bidirectional()[0]
        encoded = (
            f"{canonical.src}|{canonical.src_port}|"
            f"{canonical.dst}|{canonical.dst_port}|{canonical.protocol}"
        ).encode()
        return zlib.crc32(encoded) % self.n_shards

    def shard_of_key(self, key: FlowKey) -> int:
        """Shard index of a flow key: migration overlay, then the static map.

        The overlay test is a truthiness check on the dict, so a run that
        never migrates (``rebalance=None``) pays one falsy branch over the
        pre-overlay router.
        """
        if self._overrides:
            shard = self._overrides.get(key)
            if shard is not None:
                return shard
        return self.base_shard_of_key(key)

    def set_override(self, key: FlowKey, shard: int) -> None:
        """Re-home a bidirectional flow: both directions of ``key``'s call.

        Idempotent; the override persists for the life of the router (a
        migrated flow stays migrated), so overlay memory is bounded by the
        number of migrations, not the flow count.
        """
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard!r} out of range for {self.n_shards} shards")
        first, second = key.bidirectional()
        self._overrides[first] = shard
        self._overrides[second] = shard

    def next_epoch(self) -> int:
        """Allocate the next migration epoch (1-based, strictly increasing)."""
        self.epoch += 1
        return self.epoch

    def shard_of(self, packet: Packet) -> int:
        """Shard index ``packet`` belongs to."""
        return self.shard_of_key(five_tuple(packet))

    def partition_block(self, block: PacketBlock) -> list[tuple[int, PacketBlock]]:
        """Split a block into per-shard sub-blocks, preserving arrival order.

        The shard is computed once per unique flow of the block (memoized
        across blocks) and broadcast over the pre-computed ``flow_codes``
        column; each returned sub-block keeps its rows in the original
        order.  Sub-blocks are built without the packet-object cache -- they
        are headed for a process boundary where only the arrays matter.
        Shards with no packets in the block are omitted.
        """
        n = len(block)
        if n == 0:
            return []
        # Hash only the flows *present* in this block: a chunk sliced from a
        # whole-capture block shares the capture-wide flow table, and
        # iterating all of it per chunk would be O(total flows ever seen).
        present = np.unique(block.flow_codes)
        present_shards = np.fromiter(
            (self.shard_of_key(block.flows[code]) for code in present.tolist()),
            dtype=np.int64,
            count=len(present),
        )
        if self.n_shards == 1 or len(np.unique(present_shards)) == 1:
            return [(int(present_shards[0]), block.without_packet_cache().compact())]
        per_packet = present_shards[np.searchsorted(present, block.flow_codes)]
        return [
            (
                int(shard),
                block.take(np.flatnonzero(per_packet == shard), keep_packets=False).compact(),
            )
            for shard in np.unique(per_packet).tolist()
        ]
