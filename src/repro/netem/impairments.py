"""Impairment profiles for the network-sensitivity study (Table A.6).

Each profile varies exactly one parameter while holding the others at their
defaults (throughput 1500 kbps, delay 50 ms, jitter 0, loss 0%), matching the
paper's Section 5.4 setup.  Each combination is emulated for four calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netem.conditions import ConditionSchedule, NetworkCondition

__all__ = ["ImpairmentProfile", "IMPAIRMENT_PROFILES", "impairment_schedules"]

DEFAULT_THROUGHPUT_KBPS = 1500.0
DEFAULT_DELAY_MS = 50.0
DEFAULT_JITTER_MS = 0.0
DEFAULT_LOSS = 0.0


@dataclass(frozen=True)
class ImpairmentProfile:
    """One row of Table A.6: a swept parameter and its values."""

    name: str
    parameter: str
    values: tuple[float, ...]

    def condition_for(self, value: float) -> NetworkCondition:
        """The constant network condition for one swept value."""
        throughput = DEFAULT_THROUGHPUT_KBPS
        delay = DEFAULT_DELAY_MS
        jitter = DEFAULT_JITTER_MS
        loss = DEFAULT_LOSS
        if self.parameter == "throughput_kbps":
            throughput = value
        elif self.parameter == "throughput_jitter_kbps":
            # handled by impairment_schedules (needs per-second variation)
            pass
        elif self.parameter == "delay_ms":
            delay = value
        elif self.parameter == "jitter_ms":
            jitter = value
        elif self.parameter == "loss_pct":
            loss = value / 100.0
        else:
            raise ValueError(f"unknown impairment parameter: {self.parameter}")
        return NetworkCondition(
            throughput_kbps=throughput, delay_ms=delay, jitter_ms=jitter, loss_rate=loss
        )


#: The five impairment profiles of Table A.6.
IMPAIRMENT_PROFILES: dict[str, ImpairmentProfile] = {
    "mean_throughput": ImpairmentProfile(
        name="Mean Throughput",
        parameter="throughput_kbps",
        values=(100.0, 200.0, 500.0, 1000.0, 2000.0, 4000.0),
    ),
    "throughput_stdev": ImpairmentProfile(
        name="Throughput stdev.",
        parameter="throughput_jitter_kbps",
        values=(0.0, 100.0, 200.0, 500.0, 1000.0, 1500.0),
    ),
    "mean_latency": ImpairmentProfile(
        name="Mean Latency",
        parameter="delay_ms",
        values=(50.0, 100.0, 200.0, 300.0, 400.0, 500.0),
    ),
    "latency_stdev": ImpairmentProfile(
        name="Latency stdev.",
        parameter="jitter_ms",
        values=(10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0),
    ),
    "packet_loss": ImpairmentProfile(
        name="Packet Loss %",
        parameter="loss_pct",
        values=(1.0, 2.0, 5.0, 10.0, 15.0, 20.0),
    ),
}


def impairment_schedules(
    profile: ImpairmentProfile,
    value: float,
    duration_s: float,
    rng=None,
) -> ConditionSchedule:
    """Build the schedule for one (profile, value) cell of Table A.6.

    For the throughput-standard-deviation profile the per-second throughput is
    drawn from N(1500, value); all other profiles are constant schedules.
    """
    import numpy as np

    steps = max(1, int(np.ceil(duration_s)))
    if profile.parameter == "throughput_jitter_kbps":
        rng = rng if rng is not None else np.random.default_rng()
        conditions = []
        for _ in range(steps):
            throughput = float(np.clip(rng.normal(DEFAULT_THROUGHPUT_KBPS, value), 100.0, 20_000.0))
            conditions.append(
                NetworkCondition(
                    throughput_kbps=throughput,
                    delay_ms=DEFAULT_DELAY_MS,
                    jitter_ms=DEFAULT_JITTER_MS,
                    loss_rate=DEFAULT_LOSS,
                )
            )
        return ConditionSchedule(conditions, interval=1.0)
    condition = profile.condition_for(value)
    return ConditionSchedule.constant(condition, duration_s)
