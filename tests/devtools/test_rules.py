"""Fixture corpus: every detlint rule detects its seeded violation.

One entry per rule: a ``bad`` snippet that must produce at least one
finding of exactly that rule, a ``good`` snippet that must stay clean, and
-- driven generically for the whole corpus -- the suppression behaviour: a
``# detlint: disable=RULE`` comment on the finding's line silences it and
counts it as suppressed.

Snippets are linted with ``select=(rule,)``, which forces the rule past its
path scoping (scoping itself is pinned separately below), under a ``path``
chosen to satisfy rules that inspect the path inside ``visit`` (EXC001's
worker-loop clause).
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass

import pytest

from repro.devtools import lint_source
from repro.devtools.framework import all_rules, get_rule


@dataclass(frozen=True)
class Case:
    rule: str
    bad: str
    good: str
    path: str = "src/repro/somewhere.py"
    #: findings expected in ``bad`` (default: at least one, checked loosely)
    n_bad: int | None = None


CORPUS = [
    Case(
        rule="DET001",
        bad="""
            def route(key, n):
                return hash(key) % n
        """,
        good="""
            import zlib

            def route(key, n):
                return zlib.crc32(key.encode()) % n
        """,
    ),
    Case(
        rule="DET002",
        bad="""
            import numpy as np

            def predict(trees, X):
                return np.mean([t.predict(X) for t in trees], axis=0)
        """,
        good="""
            import numpy as np

            def predict(trees, X):
                total = trees[0].predict(X).astype(float, copy=True)
                for tree in trees[1:]:
                    total += tree.predict(X)
                return total / len(trees)
        """,
        path="src/repro/ml/forest.py",
    ),
    Case(
        rule="DET003",
        bad="""
            import random
            import numpy as np

            def jitter():
                return random.random() + np.random.normal()
        """,
        good="""
            import random
            import numpy as np

            def jitter(seed):
                rng = np.random.default_rng(seed)
                local = random.Random(seed)
                return local.random() + rng.normal()
        """,
        n_bad=2,
    ),
    Case(
        rule="DET004",
        bad="""
            from time import perf_counter
            import time

            def window_start(packet):
                return time.time() - perf_counter()
        """,
        good="""
            def window_start(packet, window_s):
                return int(packet.timestamp / window_s) * window_s
        """,
        path="src/repro/core/windows.py",
        n_bad=2,
    ),
    Case(
        rule="CODEC001",
        bad="""
            import struct
            import numpy as np

            HEADER = struct.Struct("4sHHqq")
            COLUMN = np.dtype("f8")

            def scratch(n, values):
                buf = np.empty(n, dtype="i4")
                return buf, values.astype(np.int64)
        """,
        good="""
            import struct
            import numpy as np

            HEADER = struct.Struct("<4sHHqq")
            COLUMN = np.dtype("<f8")

            def scratch(n, values):
                buf = np.empty(n, dtype="<i4")
                return buf, values.astype(np.dtype("<i8"))
        """,
        path="src/repro/net/estwire.py",
        n_bad=4,
    ),
    Case(
        rule="CODEC002",
        bad="""
            import numpy as np

            def peek(buf):
                return np.frombuffer(buf, dtype="<i8", count=2)
        """,
        good="""
            from repro.net.block import PacketBlock

            def peek(buf):
                return PacketBlock.read_from(memoryview(buf))
        """,
        path="src/repro/cluster/somefile.py",
    ),
    Case(
        rule="SPAWN001",
        bad="""
            import multiprocessing

            def start(ctx):
                def run():
                    pass
                a = multiprocessing.Process(target=lambda: None)
                b = ctx.Process(target=run)
                return a, b
        """,
        good="""
            import multiprocessing

            def worker_main():
                pass

            def start(ctx):
                a = multiprocessing.Process(target=worker_main)
                b = ctx.Process(target=worker_main, args=(1,))
                return a, b
        """,
        n_bad=2,
    ),
    Case(
        rule="OBS001",
        bad="""
            def tick(self, n):
                self.obs.inc("qoe_ticks_total")
                registry = self.registry
                registry.observe("qoe_batch_rows", n)
        """,
        good="""
            def tick(self, n, emitted):
                obs = self.obs
                if obs is None:
                    return
                obs.inc("qoe_ticks_total")
                if self.registry is not None and emitted:
                    self.registry.observe("qoe_batch_rows", n)

            def close(self):
                if self.obs is None:
                    pass
                else:
                    self.obs.set_gauge("qoe_open_flows", 0)

            def sweep(self):
                assert self.obs is not None
                self.obs.inc("qoe_sweeps_total")
        """,
        path="src/repro/core/streaming.py",
        n_bad=2,
    ),
    Case(
        rule="EXC001",
        bad="""
            def pump(queue):
                try:
                    queue.get()
                except:
                    pass

            def loop(channel):
                try:
                    channel.tick()
                except Exception:
                    pass
        """,
        good="""
            import traceback

            def pump(queue):
                try:
                    queue.get()
                except ValueError:
                    pass

            def loop(channel):
                try:
                    channel.tick()
                except BaseException:
                    channel.error(traceback.format_exc())

            def drive(channel):
                try:
                    channel.tick()
                except Exception:
                    raise RuntimeError("worker failed") from None
        """,
        path="src/repro/cluster/worker.py",
        n_bad=2,
    ),
    Case(
        rule="API001",
        bad="""
            from dataclasses import dataclass

            @dataclass
            class RetryConfig:
                attempts: int = 3
        """,
        good="""
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class RetryConfig:
                attempts: int = 3

            @dataclass
            class _ScratchConfig:
                attempts: int = 3

            class PlainConfig:
                attempts = 3
        """,
    ),
]


def _lint(case: Case, source: str):
    return lint_source(textwrap.dedent(source), path=case.path, select=(case.rule,))


@pytest.mark.parametrize("case", CORPUS, ids=[case.rule for case in CORPUS])
def test_bad_snippet_detected(case: Case):
    result = _lint(case, case.bad)
    assert result.findings, f"{case.rule} did not fire on its seeded violation"
    assert {finding.rule for finding in result.findings} == {case.rule}
    if case.n_bad is not None:
        assert len(result.findings) == case.n_bad


@pytest.mark.parametrize("case", CORPUS, ids=[case.rule for case in CORPUS])
def test_good_snippet_clean(case: Case):
    result = _lint(case, case.good)
    assert result.findings == [], f"{case.rule} false-positived on the good snippet"


@pytest.mark.parametrize("case", CORPUS, ids=[case.rule for case in CORPUS])
def test_suppression_honored(case: Case):
    source = textwrap.dedent(case.bad)
    first = lint_source(source, path=case.path, select=(case.rule,)).findings[0]
    lines = source.splitlines()
    lines[first.line - 1] += f"  # detlint: disable={case.rule} -- fixture"
    suppressed = lint_source("\n".join(lines), path=case.path, select=(case.rule,))
    assert suppressed.suppressed >= 1
    assert all(
        finding.line != first.line for finding in suppressed.findings
    ), "suppression on the finding line must silence exactly that line"


def test_corpus_covers_every_rule():
    assert {case.rule for case in CORPUS} == {rule.id for rule in all_rules()}
    assert len(all_rules()) >= 10


# -- scoping pins: the default run applies rules only where they police ------


def test_codec_rules_scoped_to_codec_modules():
    assert get_rule("CODEC001").applies_to("src/repro/net/block.py")
    assert not get_rule("CODEC001").applies_to("src/repro/core/streaming.py")
    # The codecs themselves are exactly where frombuffer is allowed.
    assert not get_rule("CODEC002").applies_to("src/repro/net/estwire.py")
    assert get_rule("CODEC002").applies_to("src/repro/cluster/shm.py")


def test_det002_scoped_to_forest():
    assert get_rule("DET002").applies_to("src/repro/ml/forest.py")
    assert not get_rule("DET002").applies_to("src/repro/ml/tree.py")


def test_det004_scoped_to_pure_modules():
    rule = get_rule("DET004")
    assert rule.applies_to("src/repro/core/frame_assembly.py")
    assert rule.applies_to("src/repro/ml/forest.py")
    # The engine/monitor layers time things legitimately (obs spans,
    # MonitorReport.timing); the obs-off bit-identity pin covers them.
    assert not rule.applies_to("src/repro/core/streaming.py")
    assert not rule.applies_to("src/repro/monitor.py")
    assert not rule.applies_to("src/repro/obs/registry.py")


def test_obs001_scoped_to_hot_path_packages():
    rule = get_rule("OBS001")
    assert rule.applies_to("src/repro/cluster/fanin.py")
    assert not rule.applies_to("src/repro/obs/logsink.py")
    assert not rule.applies_to("src/repro/sinks/summary.py")


def test_obs001_ignores_non_obs_receivers():
    source = textwrap.dedent(
        """
        def bump(self):
            self.sequence.inc("next")
        """
    )
    assert lint_source(source, select=("OBS001",)).findings == []


def test_exc001_allows_broad_handlers_outside_cluster():
    source = textwrap.dedent(
        """
        def probe():
            try:
                risky()
            except Exception:
                pass
        """
    )
    assert lint_source(source, path="src/repro/netem/link.py", select=("EXC001",)).findings == []
    cluster = lint_source(source, path="src/repro/cluster/monitor.py", select=("EXC001",))
    assert [finding.rule for finding in cluster.findings] == ["EXC001"]
